"""CNF preprocessing: subsumption, self-subsuming resolution, and bounded
variable elimination (SatELite-style).

Modern SAT solvers (including the engine inside Z3 that the paper's winning
configuration relies on) simplify the clause database before search.  The
layout-synthesis encodings produce many locally-redundant clauses (e.g.
guarded bound copies, Tseitin definitions), so preprocessing measurably
shrinks the instance.  The pipeline here is classical:

* **unit propagation** to fixpoint, rewriting the formula,
* **subsumption** — drop clauses that are supersets of another clause,
* **self-subsuming resolution** — strengthen ``C ∨ l`` against ``D ∨ ¬l``
  when ``D ⊆ C``, removing ``l`` from the first clause,
* **bounded variable elimination (BVE)** — resolve a variable away when the
  resulting set of resolvents is no larger than the clauses it replaces.

:func:`preprocess` returns a new :class:`~repro.sat.formula.CNF` plus a
:class:`ModelReconstructor` that extends a model of the simplified formula
back to the original variables (needed because BVE removes variables).
"""

from __future__ import annotations

from collections import defaultdict
from typing import AbstractSet, Dict, Iterable, List, Sequence, Set, Tuple

from .formula import CNF
from .types import neg


class Unsatisfiable(Exception):
    """The formula was refuted during preprocessing."""


class ModelReconstructor:
    """Replays BVE eliminations to extend models to eliminated variables."""

    def __init__(self) -> None:
        # stack of (variable, clauses-containing-positive-lit) entries
        self._stack: List[Tuple[int, List[List[int]]]] = []
        self.fixed: Dict[int, bool] = {}

    def record_unit(self, lit: int) -> None:
        self.fixed[lit >> 1] = not (lit & 1)

    def record_elimination(self, var: int, pos_clauses: List[List[int]]) -> None:
        self._stack.append((var, [list(c) for c in pos_clauses]))

    def extend(self, model: Sequence[bool]) -> List[bool]:
        """Extend a model of the simplified formula to all original variables."""
        full = list(model)

        def value(lit: int) -> bool:
            return full[lit >> 1] ^ bool(lit & 1)

        for var, fixed_value in self.fixed.items():
            while var >= len(full):
                full.append(False)
            full[var] = fixed_value
        for var, pos_clauses in reversed(self._stack):
            while var >= len(full):
                full.append(False)
            # var must be True iff some positive-occurrence clause is not
            # otherwise satisfied.
            needed = False
            for clause in pos_clauses:
                others = [l for l in clause if (l >> 1) != var]
                if not any(value(l) for l in others):
                    needed = True
                    break
            full[var] = needed
        return full


def _propagate_units(clauses: List[List[int]], recon: ModelReconstructor):
    """Unit propagation to fixpoint over a clause list."""
    assignment: Dict[int, bool] = {}
    changed = True
    while changed:
        changed = False
        new_clauses: List[List[int]] = []
        for clause in clauses:
            out: List[int] = []
            satisfied = False
            for lit in clause:
                var = lit >> 1
                if var in assignment:
                    if assignment[var] ^ bool(lit & 1):
                        satisfied = True
                        break
                    continue  # falsified literal dropped
                out.append(lit)
            if satisfied:
                continue
            if not out:
                raise Unsatisfiable()
            if len(out) == 1:
                lit = out[0]
                var = lit >> 1
                val = not (lit & 1)
                if var in assignment:
                    if assignment[var] != val:
                        raise Unsatisfiable()
                else:
                    assignment[var] = val
                    recon.record_unit(lit)
                    changed = True
                continue
            new_clauses.append(out)
        clauses = new_clauses
        if changed:
            # re-filter with the enlarged assignment on the next pass
            continue
    return clauses, assignment


def _subsumes(small: Set[int], big: Set[int]) -> bool:
    return small.issubset(big)


def _signature(clause) -> int:
    """64-bit Bloom-style clause signature: one bit per ``lit & 63``.

    ``sig(C) & ~sig(D) != 0`` proves C ⊄ D without touching the sets, which
    rejects almost every candidate pair in the subsumption inner loops.
    """
    sig = 0
    for lit in clause:
        sig |= 1 << (lit & 63)
    return sig


def _subsumption(clauses: List[List[int]]) -> List[List[int]]:
    """Remove subsumed clauses and apply self-subsuming resolution."""
    sets = [set(c) for c in clauses]
    sigs = [_signature(c) for c in sets]
    occurrence: Dict[int, List[int]] = defaultdict(list)
    for idx, clause in enumerate(sets):
        for lit in clause:
            occurrence[lit].append(idx)
    alive = [True] * len(sets)

    # Subsumption: for each clause, check candidates sharing its rarest literal.
    order = sorted(range(len(sets)), key=lambda i: len(sets[i]))
    for idx in order:
        if not alive[idx]:
            continue
        clause = sets[idx]
        sig = sigs[idx]
        size = len(clause)
        rarest = min(clause, key=lambda l: len(occurrence[l]))
        for other in occurrence[rarest]:
            if other == idx or not alive[other]:
                continue
            if sig & ~sigs[other]:
                continue  # some literal of ``clause`` cannot be in ``other``
            if len(sets[other]) >= size and _subsumes(clause, sets[other]):
                alive[other] = False

    # Self-subsuming resolution: C∨l strengthened by D∨¬l with D ⊆ C.
    for idx in range(len(sets)):
        if not alive[idx]:
            continue
        strengthened = True
        while strengthened:
            strengthened = False
            for lit in list(sets[idx]):
                # D ⊆ (C - l) ∪ {¬l} is necessary for the strengthening, so
                # D's signature must fit inside that union's signature.
                allowed = sigs[idx] | (1 << (neg(lit) & 63))
                for other in occurrence[neg(lit)]:
                    if not alive[other] or other == idx:
                        continue
                    if sigs[other] & ~allowed:
                        continue
                    rest = sets[other] - {neg(lit)}
                    if rest and rest.issubset(sets[idx] - {lit}):
                        sets[idx].discard(lit)
                        sigs[idx] = _signature(sets[idx])
                        strengthened = True
                        break
                if strengthened:
                    break
    return [sorted(sets[i]) for i in range(len(sets)) if alive[i] and sets[i]]


def _eliminate_variables(
    clauses: List[List[int]],
    recon: ModelReconstructor,
    growth_limit: int = 0,
    max_occurrences: int = 10,
    frozen: AbstractSet[int] = frozenset(),
) -> List[List[int]]:
    """Bounded variable elimination by distribution (resolution).

    Variables in ``frozen`` are never eliminated — callers use this to
    protect variables referenced externally (assumption literals,
    activation guards, a shared variable prefix).
    """
    occurrence: Dict[int, List[List[int]]] = defaultdict(list)
    for clause in clauses:
        for lit in clause:
            occurrence[lit].append(clause)
    variables = {lit >> 1 for clause in clauses for lit in clause}
    clause_alive = {id(c): True for c in clauses}

    for var in sorted(variables - frozen):
        pos = [c for c in occurrence[2 * var] if clause_alive.get(id(c), False)]
        negs = [c for c in occurrence[2 * var + 1] if clause_alive.get(id(c), False)]
        if not pos and not negs:
            continue
        if len(pos) > max_occurrences or len(negs) > max_occurrences:
            continue
        resolvents: List[List[int]] = []
        for cp in pos:
            for cn in negs:
                merged = {l for l in cp if (l >> 1) != var}
                merged.update(l for l in cn if (l >> 1) != var)
                if any(neg(l) in merged for l in merged):
                    continue  # tautology, dropped
                resolvents.append(sorted(merged))
        if len(resolvents) > len(pos) + len(negs) + growth_limit:
            continue
        # Commit the elimination.
        recon.record_elimination(var, pos)
        for clause in pos + negs:
            clause_alive[id(clause)] = False
        for resolvent in resolvents:
            if not resolvent:
                raise Unsatisfiable()
            clause_alive[id(resolvent)] = True
            for lit in resolvent:
                occurrence[lit].append(resolvent)
        clauses = [c for c in clauses if clause_alive.get(id(c), False)]
        clauses.extend(resolvents)
    return [c for c in clauses if clause_alive.get(id(c), True)]


def preprocess(
    cnf: CNF,
    eliminate: bool = True,
    growth_limit: int = 0,
    frozen: Iterable[int] = (),
) -> Tuple[CNF, ModelReconstructor]:
    """Simplify ``cnf``; returns ``(simplified, reconstructor)``.

    Raises :class:`Unsatisfiable` when the formula is refuted outright.
    The simplified formula is over the same variable numbering (eliminated
    variables simply no longer occur); use
    :meth:`ModelReconstructor.extend` to rebuild full models.  Variables
    in ``frozen`` are protected from elimination so callers may keep
    referencing them (assumption literals, shared prefixes).
    """
    recon = ModelReconstructor()
    clauses = []
    for raw in cnf.clauses:
        unique = sorted(set(raw))
        if any(neg(l) in unique for l in unique):
            continue  # tautology: always satisfied
        clauses.append(unique)
    clauses, _assignment = _propagate_units(clauses, recon)
    clauses = _subsumption(clauses)
    if eliminate:
        clauses = _eliminate_variables(
            clauses, recon, growth_limit=growth_limit, frozen=frozenset(frozen)
        )
        clauses = _subsumption(clauses)
    simplified = CNF()
    simplified.new_vars(cnf.n_vars)
    simplified.add_clauses(clauses)
    return simplified, recon


def preprocess_stats(original: CNF, simplified: CNF) -> dict:
    """Size reduction summary for reporting."""
    return {
        "clauses_before": original.num_clauses,
        "clauses_after": simplified.num_clauses,
        "literals_before": original.num_literals,
        "literals_after": simplified.num_literals,
        "clause_reduction": 1 - simplified.num_clauses / max(1, original.num_clauses),
    }
