"""DIMACS CNF reading and writing.

The paper's tooling dumps SMT instances via ``Solver.sexpr()`` to measure raw
solving time; the analogous artefact for our SAT substrate is the DIMACS dump,
which also lets instances be cross-checked against external solvers.
"""

from __future__ import annotations

from typing import IO, Union

from .formula import CNF
from .types import dimacs_to_lit, lit_to_dimacs


def write_dimacs(cnf: CNF, fp: IO[str]) -> None:
    """Serialise ``cnf`` in DIMACS format to a text stream."""
    fp.write(f"p cnf {cnf.n_vars} {len(cnf.clauses)}\n")
    for clause in cnf.clauses:
        fp.write(" ".join(str(lit_to_dimacs(l)) for l in clause))
        fp.write(" 0\n")


def dumps(cnf: CNF) -> str:
    """Serialise ``cnf`` to a DIMACS string."""
    lines = [f"p cnf {cnf.n_vars} {len(cnf.clauses)}"]
    for clause in cnf.clauses:
        lines.append(" ".join(str(lit_to_dimacs(l)) for l in clause) + " 0")
    return "\n".join(lines) + "\n"


def read_dimacs(source: Union[str, IO[str]]) -> CNF:
    """Parse DIMACS text (a string or a text stream) into a :class:`CNF`."""
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = source
    cnf = CNF()
    declared_vars = None
    declared_clauses = None
    pending: list = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"malformed problem line: {line!r}")
            declared_vars = int(parts[2])
            declared_clauses = int(parts[3])
            while cnf.n_vars < declared_vars:
                cnf.new_var()
            continue
        for tok in line.split():
            val = int(tok)
            if val == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                lit = dimacs_to_lit(val)
                while (lit >> 1) >= cnf.n_vars:
                    cnf.new_var()
                pending.append(lit)
    if pending:
        raise ValueError(
            f"unterminated clause at end of input: {len(pending)} literal(s) "
            "with no closing 0"
        )
    if declared_clauses is not None and cnf.num_clauses != declared_clauses:
        raise ValueError(
            f"problem line declares {declared_clauses} clause(s) but "
            f"{cnf.num_clauses} were parsed"
        )
    return cnf
