"""A conflict-driven clause-learning (CDCL) SAT solver.

This module is the constraint-solving substrate for the whole repository.  The
original OLSQ2 paper solves its layout-synthesis models with Z3; its winning
configuration bit-blasts every bit-vector variable down to propositional logic
so that Z3's *internal SAT engine* does the actual work.  Since no external
solver is available here, this file implements that engine from scratch in the
MiniSat lineage:

* two-watched-literal unit propagation over a **flat clause arena**
  (:mod:`repro.sat.arena`) with blocker literals, so most watcher visits
  never touch clause storage at all,
* first-UIP conflict analysis with clause minimisation,
* VSIDS variable activities with phase saving,
* Luby-sequence restarts (memoised sequence),
* a three-tier learnt-clause database (core / tier2 / local, by LBD) with
  O(1) lazy deletion, usage-driven promotion/demotion and periodic arena
  compaction,
* restart-time inprocessing (:mod:`repro.sat.inprocess`): clause
  vivification, failed-literal probing with hyper-binary resolution and
  equivalent-literal substitution, and subsumption — all at the level-0
  safe points also used for clause sharing, all emitting RUP proof lines,
* incremental solving under assumptions with failed-assumption cores.

Incrementality matters: the paper's iterative depth/SWAP refinement re-solves
a sequence of near-identical models and relies on the solver reusing learned
information between iterations (Sec. III-B).  Assumption-based solving gives
exactly that — learnt clauses survive across :meth:`Solver.solve` calls — and
:meth:`repro.core.encoder.LayoutEncoder.extend_horizon` extends the *formula*
in place so they also survive horizon growth.

Performance notes (pure Python): clauses are addressed by integer refs into
one flat literal list (plain lists beat ``array('i')`` under CPython because
reads return cached int objects instead of boxing); binary and ternary
clauses bypass the arena entirely via scan-only ``watches_bin`` /
``watches_ter`` lists with reasons packed into the reason integer; n-ary
watcher lists are flat ``[cref, blocker, cref, blocker, ...]`` lists scanned
with swap-remove and circular new-watch search; the hot loops hoist every
attribute access into locals.  See ``docs/PERFORMANCE.md`` for the layout
rationale and measured effect.
"""

from __future__ import annotations

import os
import time
from array import array
from typing import (
    TYPE_CHECKING,
    Any,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .arena import ClauseArena, FloatBuf, IntBuf
from .preprocess import ModelReconstructor
from .result import SatResult
from .types import FALSE, TRUE, UNDEF, neg

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .inprocess import Inprocessor

#: Sentinel clause reference meaning "no clause" (decision / no conflict).
NO_CLAUSE = -1

# Binary and ternary clauses are fully inlined into dedicated watch lists
# and into the reason array, so propagating them never touches the arena.
# A reason value ``r < NO_CLAUSE`` packs the clause's *other* literals into
# ``k = BIN_BASE - r``: even ``k`` is a binary reason (other literal
# ``k >> 1``); odd ``k`` is a ternary reason (literals ``k >> 33`` and
# ``(k >> 1) & 0xFFFFFFFF``).  Conflicts in these clauses use the constant
# tag ``BIN_BASE`` plus the ``_confl_lits`` side channel.
BIN_BASE = -2

_TER_MASK = 0xFFFFFFFF


def _addr(buf: Any) -> int:
    """Raw base address of an ``array`` buffer.

    Unlike ``ffi.from_buffer``, ``buffer_info()`` does not export the
    buffer, so the array stays resizable; the caller (the kernel binding
    layer) is responsible for rebinding after any growth.
    """
    return int(buf.buffer_info()[0])


def _packed_reason_lits(tag: int) -> tuple:
    """The packed literals inside a binary/ternary reason value."""
    k = BIN_BASE - tag
    if k & 1:
        return (k >> 33, (k >> 1) & _TER_MASK)
    return (k >> 1,)


class Clause(list):
    """A clause as a list of packed literals plus solver metadata.

    The solver itself now stores clauses in the flat :class:`ClauseArena`
    and addresses them by integer reference; this class remains as the
    public value type for callers that want a self-contained clause object
    (e.g. pulling clauses out of a solver for inspection).
    """

    __slots__ = ("learnt", "lbd", "act")

    def __init__(self, lits: Iterable[int], learnt: bool = False):
        super().__init__(lits)
        self.learnt = learnt
        self.lbd = 0
        self.act = 0.0


class SolverStats:
    """Counters describing the work a solver instance has performed."""

    __slots__ = (
        "conflicts",
        "decisions",
        "propagations",
        "restarts",
        "learnt_literals",
        "removed_clauses",
        "solve_calls",
        "exported_clauses",
        "imported_clauses",
        "inprocessings",
        "vivified_clauses",
        "vivified_literals",
        "failed_literals",
        "hyper_binaries",
        "equivalent_literals",
        "subsumed_clauses",
        "strengthened_clauses",
        "eliminated_vars",
        "encode_wall_sec",
        "solve_wall_sec",
        "lbd_counts",
        "kernel",
    )

    #: Slots excluded from :meth:`snapshot`, which must stay numeric so the
    #: per-solve telemetry can diff it (``lbd_counts`` is a histogram,
    #: ``kernel`` a backend name string).
    _NON_SCALAR = frozenset({"lbd_counts", "kernel"})

    #: Wall-clock slots (floats, nondeterministic): part of snapshots and
    #: telemetry deltas, but excluded by the differential tests when they
    #: compare two solvers' stats for byte-identical search behaviour.
    WALL_CLOCK = frozenset({"encode_wall_sec", "solve_wall_sec"})

    def __init__(self) -> None:
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learnt_literals = 0
        self.removed_clauses = 0
        self.solve_calls = 0
        self.exported_clauses = 0
        self.imported_clauses = 0
        # Inprocessing counters (repro.sat.inprocess): passes run, clauses /
        # literals removed by vivification, units from failed-literal
        # probing, hyper-binary resolvents, literals merged by equivalence
        # substitution, clauses subsumed, clauses strengthened (SSR +
        # level-0 cleaning), variables removed by bounded elimination.
        self.inprocessings = 0
        self.vivified_clauses = 0
        self.vivified_literals = 0
        self.failed_literals = 0
        self.hyper_binaries = 0
        self.equivalent_literals = 0
        self.subsumed_clauses = 0
        self.strengthened_clauses = 0
        self.eliminated_vars = 0
        # Wall-clock split: seconds spent building the formula (accumulated
        # by the encoder while it owns this solver as its sink) vs seconds
        # inside solve().  Together they answer "is this workload
        # encode-bound or search-bound?" per solver instance.
        self.encode_wall_sec = 0.0
        self.solve_wall_sec = 0.0
        # LBD value -> number of clauses learnt with that LBD (cumulative).
        self.lbd_counts: dict = {}
        # The propagation/analysis backend actually driving this solver
        # ("python" or "native"); set by Solver.__init__.
        self.kernel = "python"

    def as_dict(self) -> dict:
        d = {
            name: getattr(self, name)
            for name in self.__slots__
            if name not in self._NON_SCALAR
        }
        d["lbd_counts"] = dict(self.lbd_counts)
        d["kernel"] = self.kernel
        return d

    def snapshot(self) -> dict:
        """Flat scalar counters (no histogram) — cheap to diff per solve()."""
        return {
            name: getattr(self, name)
            for name in self.__slots__
            if name not in self._NON_SCALAR
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"SolverStats({inner})"


# The Luby sequence as exponents of 2, built from the doubling identity
# S_k = S_{k-1} + S_{k-1} + [k-1]; luby(y, x) == y ** _LUBY_EXP[x].
_LUBY_EXP: List[int] = [0]


def luby(y: float, x: int) -> float:
    """Return the ``x``-th term of the Luby restart sequence scaled by ``y``.

    The integer exponent sequence is memoised, so per-restart calls are a
    list index instead of the classic loop + float pow.
    """
    exp = _LUBY_EXP
    while x >= len(exp):
        k = (len(exp) + 1).bit_length() - 1  # len == 2**k - 1 here
        exp.extend(exp)
        exp.append(k)
    return y ** exp[x]


class _VarOrderHeap:
    """Indexed max-heap over variable activities (the VSIDS order)."""

    __slots__ = ("activity", "heap", "indices", "n")

    def __init__(self, activity: FloatBuf, typed: bool = False):
        self.activity = activity
        # ``typed`` switches the heap arrays to array('i') so the compiled
        # kernel can pop/reinsert/percolate in place (zero-copy view).
        # ``heap`` is preallocated to one slot per variable with the live
        # prefix length in ``n`` — C cannot append to a Python container,
        # and a fixed-capacity heap never needs to (it holds at most every
        # variable once).
        self.heap: IntBuf = array("i") if typed else []
        self.indices: IntBuf = array("i") if typed else []
        self.n = 0

    def _lt(self, u: int, v: int) -> bool:
        return self.activity[u] > self.activity[v]

    def in_heap(self, v: int) -> bool:
        return v < len(self.indices) and self.indices[v] >= 0

    def _percolate_up(self, i: int) -> None:
        heap, indices, activity = self.heap, self.indices, self.activity
        x = heap[i]
        ax = activity[x]
        while i > 0:
            p = (i - 1) >> 1
            hp = heap[p]
            if ax > activity[hp]:
                heap[i] = hp
                indices[hp] = i
                i = p
            else:
                break
        heap[i] = x
        indices[x] = i

    def _percolate_down(self, i: int) -> None:
        heap, indices, activity = self.heap, self.indices, self.activity
        x = heap[i]
        ax = activity[x]
        n = self.n
        while True:
            left = 2 * i + 1
            if left >= n:
                break
            right = left + 1
            child = (
                right
                if right < n and activity[heap[right]] > activity[heap[left]]
                else left
            )
            hc = heap[child]
            if activity[hc] > ax:
                heap[i] = hc
                indices[hc] = i
                i = child
            else:
                break
        heap[i] = x
        indices[x] = i

    def grow_to(self, n_vars: int) -> None:
        while len(self.indices) < n_vars:
            self.indices.append(-1)
            self.heap.append(0)  # capacity slot; live prefix is self.n

    def insert(self, v: int) -> None:
        if self.indices[v] >= 0:
            return
        n = self.n
        self.indices[v] = n
        self.heap[n] = v
        self.n = n + 1
        self._percolate_up(n)

    def decrease(self, v: int) -> None:
        """Activity of ``v`` increased; restore heap order."""
        if self.indices[v] >= 0:
            self._percolate_up(self.indices[v])

    def pop(self) -> int:
        heap, indices = self.heap, self.indices
        x = heap[0]
        self.n -= 1
        n = self.n
        last = heap[n]
        indices[x] = -1
        if n:
            heap[0] = last
            indices[last] = 0
            self._percolate_down(0)
        return x

    def __len__(self) -> int:
        return self.n


class Solver:
    """Incremental CDCL SAT solver.

    Typical usage::

        solver = Solver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([mk_lit(a), mk_lit(b)])
        assert solver.solve() is SatResult.SAT
        assert solver.solve(assumptions=[mk_lit(a, negative=True)])

    :meth:`solve` returns a :class:`repro.sat.SatResult`:
    :attr:`~SatResult.SAT` (read :attr:`model`), :attr:`~SatResult.UNSAT`
    (read :attr:`core` for failed assumptions), or
    :attr:`~SatResult.UNKNOWN` when a conflict/time budget expired or the
    attached tracer was cancelled.  The enum is truthy exactly on SAT and
    ``==``-compatible with the legacy ``True``/``False``/``None``.

    Clauses live in :attr:`arena` and are addressed by integer reference;
    :attr:`clauses` and :attr:`learnts` are lists of such references.
    """

    VAR_DECAY = 1.0 / 0.95
    CLA_DECAY = 1.0 / 0.999
    RESCALE_LIMIT = 1e100
    RESTART_BASE = 100
    #: Route size-3 clauses through the scan-only ternary watch lists
    #: instead of the generic two-watch scheme (see :meth:`_attach`).
    TERNARY_SPECIAL = True
    #: Learnt clauses with LBD at or below this go to the *core* tier and
    #: are never reduced away (glue clauses, imports).
    TIER_CORE_LBD = 2
    #: Learnt clauses with LBD at or below this start in *tier2*; anything
    #: above starts in the aggressively-reduced *local* tier.
    TIER2_LBD = 6
    #: Conflicts between restart-time inprocessing passes.  High enough
    #: that short solves (unit tests, easy bounds) never pay for a pass.
    INPROCESS_INTERVAL = 3000
    #: Conflicts accumulated since the last pass before a *new* solve()
    #: call runs one at entry (incremental queries between restarts).
    SOLVE_INPROCESS_DELTA = 500

    def __init__(
        self,
        proof_log: bool = False,
        kernel: Optional[str] = None,
        sanitize: Optional[str] = None,
    ) -> None:
        # Backend selection (see repro.sat.kernel): "python" keeps every
        # structure a plain list (the fastest layout for the interpreter);
        # "native" lays per-variable state and the arena out in typed
        # array buffers and runs propagate/analyze in the
        # compiled kernel over those buffers zero-copy.  Both backends are
        # byte-for-byte equivalent (same trail, learnts, proof log).
        from .kernel import kernel_handles, resolve_backend

        self.kernel = resolve_backend(kernel)
        native = self.kernel == "native"
        self._k_ffi: Any = None
        self._k_lib: Any = None
        self._kern: Any = None
        if native:
            # The (ffi, lib) pair is cached at module level: parallel probes
            # and pool workers construct solvers by the hundred, and
            # re-deriving the handles from the extension module on each
            # construction is measurable overhead for nothing.
            ffi, lib = kernel_handles()
            self._k_ffi = ffi
            self._k_lib = lib
            self._kern = ffi.gc(lib.k_new(), lib.k_free)
            # Persistent scratch cdata reused across calls.
            self._k_out = ffi.new("int64_t[6]")
            self._k_confl = ffi.new("int32_t[3]")
            self._k_ints = ffi.new("int64_t[3]")
            self._k_dbl = ffi.new("double[2]")
            self._k_learnt = ffi.new("int32_t[16]")
            self._k_learnt_cap = 16
            self._k_heapn = ffi.new("int32_t[1]")
            # Binding generation markers: the kernel caches the raw base
            # addresses of the Python-owned buffers (k_bind_vars /
            # k_bind_arena), and every native entry point rebinds first
            # when one of these is stale.  n_vars covers the per-variable
            # buffers (they grow only in new_var); arena.version covers
            # every arena buffer (bumped on each alloc/compact).
            self._k_nvars = -1
            self._k_aver = -1
        # Runtime sanitizer (repro.analysis.sanitize): an ASan-style debug
        # layer validating engine invariants at the level-0 safe points.
        # ``None`` defers to the REPRO_SANITIZE environment variable.  Off
        # (the default) costs nothing: the attribute stays None, the module
        # is never imported, and the hot loops below contain no hook — the
        # checks run only where this attribute is tested, which is never
        # inside _propagate/_analyze.
        self._sanitizer: Any = None
        mode = sanitize if sanitize is not None else (
            os.environ.get("REPRO_SANITIZE") or "off"
        )
        if mode != "off":
            from ..analysis.sanitize import SolverSanitizer, resolve_sanitize

            mode = resolve_sanitize(mode)
            if mode != "off":
                self._sanitizer = SolverSanitizer(self, mode)
        self.sanitize = mode
        # When proof logging is on, every clause the solver derives (learnt
        # clauses, strengthened input clauses, the final empty clause) is
        # appended to ``proof`` as ("a", lits); deletions as ("d", lits).
        # repro.sat.proof.check_unsat_proof replays the log by reverse unit
        # propagation, giving an independently checkable UNSAT certificate.
        self.proof: Optional[List[tuple]] = [] if proof_log else None
        if proof_log and self._sanitizer is not None:
            # Under the sanitizer the proof list enforces discipline online:
            # add-before-delete always, RUP-at-emission in "full" mode.
            self.proof = self._sanitizer.checked_proof_log()
        # How many root-level (level-0) trail literals have been emitted
        # into the proof as explicit unit additions.  Inprocessing logs
        # each root unit once before deleting clauses satisfied by it, so
        # the checker never loses a derivation the solver still relies on.
        self._proof_root_logged = 0
        # Optional repro.telemetry.Tracer; when set, every solve() emits a
        # "solver.solve" stats-snapshot event and restarts become both
        # "solver.restart" events and cooperative-cancellation poll points.
        # Kept as a plain None-default attribute (not NULL_TRACER) so the
        # disabled-path cost is a single identity check per solve().
        self.tracer = None
        # Optional repro.sat.sharing.ShareClient: when set, freshly learnt
        # clauses passing the share filter are exported and foreign clauses
        # are imported at restart boundaries (the level-0 safe points).
        # None keeps the solo-solver cost at one identity check per conflict.
        self.share = None
        self.n_vars = 0
        self.arena = ClauseArena(typed=native)
        self.clauses: List[int] = []  # crefs of problem clauses
        # Learnt clauses live in three tiers (Chanseok-Oh style): ``core``
        # (LBD <= TIER_CORE_LBD, kept forever), ``tier2`` (mid LBD, demoted
        # to local when unused between reductions) and ``local`` (reduced
        # by activity).  ``self.learnts`` is a read-only concatenation.
        self.learnts_core: List[int] = []
        self.learnts_tier2: List[int] = []
        self.learnts_local: List[int] = []
        # Per-literal watcher lists, flat: [cref0, blocker0, cref1, ...].
        self.watches: List[List[int]] = []
        # Per-literal binary watch lists: watches_bin[p] holds, for every
        # binary clause {p^1, other}, the literal ``other``.  These lists
        # are scan-only during propagation (binary clauses are never
        # deleted), so the hot loop never rewrites them.
        self.watches_bin: List[List[int]] = []
        # Per-literal ternary watch lists: watches_ter[p] holds flat
        # (a, b) pairs, one per size-3 clause containing ``p ^ 1``; the
        # clause is examined whenever any of its literals becomes false,
        # so nothing is ever rewritten or dereferenced through the arena.
        self.watches_ter: List[List[int]] = []
        # Truth value per *literal* (TRUE/FALSE/UNDEF): one read answers
        # "is this literal true?" with no shift/mask arithmetic, which is
        # where a Python hot loop spends its time.  assigns_lit[l] and
        # assigns_lit[l ^ 1] are kept complementary (or both UNDEF).
        #
        # Under the native kernel these (and level/reason/trail/seen/
        # polarity/activity) become typed buffers the C side reads and
        # writes through cffi ``from_buffer`` pointers: int8 truth values,
        # int32 levels/trail, int64 reasons (packed ternary reasons exceed
        # 32 bits), float64 activities.  Both container families share the
        # list subscript/append API, so all cold-path code is written once.
        self.assigns_lit: IntBuf = array("b") if native else []
        self.level: IntBuf = array("i") if native else []
        # cref or NO_CLAUSE (or a packed binary/ternary reason < NO_CLAUSE)
        self.reason: IntBuf = array("q") if native else []
        # saved phases; truthy = assign negative
        self.polarity: IntBuf = array("b") if native else []
        self.activity: FloatBuf = array("d") if native else []
        self.order = _VarOrderHeap(self.activity, typed=native)
        # Preallocated trail buffer; trail_size is the live prefix length.
        self.trail: IntBuf = array("i") if native else []
        self.trail_size = 0
        self.trail_lim: List[int] = []
        self.qhead = 0
        # seen[] flags for conflict analysis.  array('B') rather than
        # bytearray in native mode: the kernel binds its raw address via
        # buffer_info(), which bytearray does not expose.
        self.seen: IntBuf = array("B") if native else []
        self.var_inc = 1.0
        self.cla_inc = 1.0
        self.ok = True
        self.model: List[bool] = []
        self.core: List[int] = []
        self.stats = SolverStats()
        self.stats.kernel = self.kernel
        self.max_learnts = 1000.0
        # Literal pair of the most recent binary-clause conflict (valid when
        # _propagate returned a tag < NO_CLAUSE).
        self._confl_lits = (0, 0)
        # Restart-time inprocessing (repro.sat.inprocess).  Enabled by
        # default; the engine is constructed lazily on first use.  The
        # conflict threshold for the next pass advances by
        # INPROCESS_INTERVAL each time one runs.
        self.inprocessing = True
        self.inprocessor: Optional["Inprocessor"] = None
        self._next_inprocess = self.INPROCESS_INTERVAL
        self._last_inprocess = 0
        self._last_reduce_conflicts = 0
        # Variables bounded elimination may remove.  Everything is frozen
        # unless explicitly thawed: callers (the encoder) thaw only
        # variables they will never reference again, which is what keeps
        # assumption literals, activation guards and the shared
        # ``base_vars`` prefix intact across extend_horizon / sharing.
        self._thawed: Set[int] = set()
        self._eliminated: Set[int] = set()
        # Witness stack extending models over eliminated variables.
        self._recon: Optional[ModelReconstructor] = None
        # Bulk-load staging (begin_bulk/end_bulk): when set, add_clause
        # appends raw literals here and end_bulk lands everything through
        # add_clauses_bulk in emission order.
        self._bulk_staged: Optional[Tuple[List[int], List[int]]] = None
        # Encode replay (begin_replay/end_replay): after restoring an
        # encoded-state snapshot the encoder re-runs its builders purely to
        # reconstruct *Python-side* objects (domain vars, literal tables).
        # During replay new_var hands back the already-allocated variables
        # in order and add_clause drops clauses (they are all in the
        # restored arena).  ``None`` means off; otherwise the next variable
        # index to replay.
        self._replay_cursor: Optional[int] = None

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable and return its index."""
        cursor = self._replay_cursor
        if cursor is not None:
            # Replay mode: the variable already exists (snapshot restore);
            # hand indices back in the original allocation order.
            assert cursor < self.n_vars, "replay allocated past the snapshot"
            self._replay_cursor = cursor + 1
            return cursor
        v = self.n_vars
        self.n_vars += 1
        self.watches.append([])
        self.watches.append([])
        self.watches_bin.append([])
        self.watches_bin.append([])
        self.watches_ter.append([])
        self.watches_ter.append([])
        self.assigns_lit.append(UNDEF)
        self.assigns_lit.append(UNDEF)
        self.level.append(0)
        self.reason.append(NO_CLAUSE)
        self.polarity.append(True)
        self.activity.append(0.0)
        self.seen.append(0)
        self.trail.append(0)
        self.order.grow_to(self.n_vars)
        self.order.insert(v)
        return v

    def new_vars(self, count: int) -> List[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_var() for _ in range(count)]

    def value(self, lit: int) -> int:
        """Current truth value of ``lit``: TRUE, FALSE or UNDEF."""
        return self.assigns_lit[lit]

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a clause; returns ``False`` if the formula became trivially UNSAT.

        Must be called at decision level 0 (i.e. between :meth:`solve` calls).
        Duplicate literals are removed, tautologies are dropped, and literals
        already false at level 0 are stripped.
        """
        if not self.ok:
            return False
        assert not self.trail_lim, "clauses may only be added at level 0"
        if self._replay_cursor is not None:
            # Replay mode: the clause is already stored (snapshot restore).
            return self.ok
        staged = self._bulk_staged
        if staged is not None:
            # Bulk mode (begin_bulk/end_bulk): record the raw clause and
            # defer everything — normalization, proof lines, storage,
            # attachment, unit propagation — to end_bulk, which replays the
            # staged clauses in this exact emission order.
            staged[0].extend(lits)
            staged[1].append(len(lits))
            return self.ok
        if self._sanitizer is not None and self.proof is not None:
            # The proof discipline checker needs the original clause in its
            # shadow database *before* any "a"/"d" line can reference it.
            self._sanitizer.note_input_clause(lits)
        out: List[int] = []
        seen_here = set()
        for lit in sorted(lits):
            if lit in seen_here:
                continue
            if (lit ^ 1) in seen_here:
                return True  # tautology
            val = self.value(lit)
            if val == TRUE:
                return True  # already satisfied at level 0
            if val == FALSE:
                continue  # falsified at level 0; drop literal
            seen_here.add(lit)
            out.append(lit)
        if self.proof is not None and sorted(out) != sorted(set(lits)):
            self.proof.append(("a", tuple(out)))
        if not out:
            self.ok = False
            return False
        if len(out) == 1:
            self._unchecked_enqueue(out[0], NO_CLAUSE)
            self.ok = self._propagate() == NO_CLAUSE
            if not self.ok and self.proof is not None:
                self.proof.append(("a", ()))
            return self.ok
        cref = self.arena.alloc(out)
        self.clauses.append(cref)
        self._attach(cref)
        return True

    def add_clauses(self, clause_list: Iterable[Sequence[int]]) -> bool:
        ok = True
        for lits in clause_list:
            ok = self.add_clause(lits) and ok
        return ok

    def begin_bulk(self) -> None:
        """Enter bulk-load staging: subsequent :meth:`add_clause` calls are
        buffered as flat literals and landed together by :meth:`end_bulk`.

        The final solver state is byte-identical to immediate per-clause
        adds (end_bulk processes the staged clauses in emission order with
        add_clause's exact semantics), but storage and watch attachment
        happen in bulk.  Nesting is not supported; reads of clause counts
        or level-0 truth values made *between* begin and end see the
        pre-staging state.
        """
        assert self._bulk_staged is None, "bulk staging does not nest"
        self._bulk_staged = ([], [])

    def end_bulk(self) -> bool:
        """Land every clause staged since :meth:`begin_bulk`; returns
        ``False`` if the formula became trivially UNSAT."""
        staged = self._bulk_staged
        self._bulk_staged = None
        if staged is None:
            return self.ok
        return self.add_clauses_bulk(staged[0], staged[1])

    def begin_replay(self) -> None:
        """Enter encode-replay mode (snapshot restore).

        While replaying, :meth:`new_var` returns the already-allocated
        variables in their original order and :meth:`add_clause` is a
        no-op: the encoder re-runs its builders only to rebuild Python-side
        bookkeeping (domain variables, literal tables, selector lists) on
        top of a restored solver whose formula is already complete.
        """
        assert self._bulk_staged is None, "cannot replay inside bulk staging"
        assert self._replay_cursor is None, "replay does not nest"
        self._replay_cursor = 0

    def end_replay(self) -> int:
        """Leave replay mode; returns how many variables were replayed.

        Callers should check the count against :attr:`n_vars` — a replay
        that allocates fewer variables than the snapshot holds means the
        builders diverged from the encode that produced it.
        """
        cursor = self._replay_cursor
        assert cursor is not None, "end_replay without begin_replay"
        self._replay_cursor = None
        return cursor

    @property
    def replaying(self) -> bool:
        """True while :meth:`begin_replay` is active."""
        return self._replay_cursor is not None

    def add_clauses_bulk(self, flat: Sequence[int], sizes: Sequence[int]) -> bool:
        """Bulk-load problem clauses from a flat literal buffer.

        ``flat`` holds the literals of every clause back to back, ``sizes``
        the per-clause literal counts.  Semantically identical to a loop of
        :meth:`add_clause` calls over the same clauses — same normalization
        (sort / dedup / tautology drop / level-0 strip), same unit
        propagation points, same proof lines, same final solver state — but
        the surviving clauses land in the arena through one
        :meth:`ClauseArena.alloc_bulk` per run of non-unit clauses, and in
        native mode their watches attach through a single ``k_load_clauses``
        call instead of one FFI round trip per clause.
        """
        assert not self.trail_lim, "clauses may only be added at level 0"
        sanitizer = self._sanitizer
        proof = self.proof
        assigns = self.assigns_lit
        staged: List[int] = []
        staged_sizes: List[int] = []
        pos = 0
        if proof is None and self._kern is not None and self.TERNARY_SPECIAL:
            # Native hot path: normalization runs in C against the bound
            # assigns view (k_normalize_clauses), stopping at each unit so
            # propagation happens at the exact per-clause points.
            return self._add_clauses_bulk_native(flat, sizes)
        if proof is None:
            # Hot path (no proof logging): clauses of size 1-3 dominate
            # layout encodings (>90% of the queko formula), and for those
            # the sort/dedup/tautology/level-0 normalization reduces to a
            # handful of comparisons — no slice, no sorted(), no set.
            # Every branch below lands the exact literals the generic
            # loop would have produced, in the same order.
            sap = staged.append
            ssap = staged_sizes.append
            true_ = TRUE
            false_ = FALSE
            for sz in sizes:
                if sz == 3:
                    a = flat[pos]
                    b = flat[pos + 1]
                    c = flat[pos + 2]
                    pos += 3
                    if b < a:
                        a, b = b, a
                    if c < b:
                        b, c = c, b
                        if b < a:
                            a, b = b, a
                    # Sorted triple: any tautology pair is adjacent
                    # (complements differ only in the low bit, so nothing
                    # can sort between them).
                    if b == (a ^ 1) or c == (b ^ 1):
                        continue
                    va = assigns[a]
                    vb = assigns[b]
                    vc = assigns[c]
                    if va == true_ or vb == true_ or vc == true_:
                        continue
                    n_out = 0
                    if va != false_:
                        l0 = a
                        n_out = 1
                    if b != a and vb != false_:
                        if n_out:
                            l1 = b
                        else:
                            l0 = b
                        n_out += 1
                    if c != b and vc != false_:
                        if n_out == 0:
                            l0 = c
                        elif n_out == 1:
                            l1 = c
                        else:
                            l2 = c
                        n_out += 1
                    if n_out == 3:
                        sap(l0)
                        sap(l1)
                        sap(l2)
                        ssap(3)
                        continue
                    if n_out == 2:
                        sap(l0)
                        sap(l1)
                        ssap(2)
                        continue
                elif sz == 2:
                    a = flat[pos]
                    b = flat[pos + 1]
                    pos += 2
                    if b < a:
                        a, b = b, a
                    if b == (a ^ 1):
                        continue  # tautology
                    va = assigns[a]
                    vb = assigns[b]
                    if va == true_ or vb == true_:
                        continue  # already satisfied at level 0
                    n_out = 0
                    if va != false_:
                        l0 = a
                        n_out = 1
                    if b != a and vb != false_:
                        if n_out:
                            sap(l0)
                            sap(b)
                            ssap(2)
                            continue
                        l0 = b
                        n_out = 1
                elif sz == 1:
                    l0 = flat[pos]
                    pos += 1
                    va = assigns[l0]
                    if va == true_:
                        continue
                    n_out = 0 if va == false_ else 1
                else:
                    # Rare sizes: generic normalization, same as the
                    # proof-logging loop below.
                    clause = flat[pos : pos + sz]
                    pos += sz
                    out: List[int] = []
                    seen_here: Set[int] = set()
                    skip = False
                    for lit in sorted(clause):
                        if lit in seen_here:
                            continue
                        if (lit ^ 1) in seen_here:
                            skip = True
                            break
                        val = assigns[lit]
                        if val == true_:
                            skip = True
                            break
                        if val == false_:
                            continue
                        seen_here.add(lit)
                        out.append(lit)
                    if skip:
                        continue
                    n_out = len(out)
                    if n_out > 1:
                        staged.extend(out)
                        ssap(n_out)
                        continue
                    if n_out == 1:
                        l0 = out[0]
                if n_out == 0:
                    self.ok = False
                    break
                # Unit survivor: flush so staged clauses are live before
                # the unit propagates (matching the per-clause order).
                self._flush_bulk(staged, staged_sizes)
                self._unchecked_enqueue(l0, NO_CLAUSE)
                self.ok = self._propagate() == NO_CLAUSE
                if not self.ok:
                    break
            self._flush_bulk(staged, staged_sizes)
            return self.ok
        for sz in sizes:
            if not self.ok:
                break
            clause = flat[pos : pos + sz]
            pos += sz
            if sanitizer is not None and proof is not None:
                sanitizer.note_input_clause(clause)
            out: List[int] = []
            seen_here: Set[int] = set()
            skip = False
            for lit in sorted(clause):
                if lit in seen_here:
                    continue
                if (lit ^ 1) in seen_here:
                    skip = True  # tautology
                    break
                val = assigns[lit]
                if val == TRUE:
                    skip = True  # already satisfied at level 0
                    break
                if val == FALSE:
                    continue  # falsified at level 0; drop literal
                seen_here.add(lit)
                out.append(lit)
            if skip:
                continue
            if proof is not None and sorted(out) != sorted(set(clause)):
                proof.append(("a", tuple(out)))
            if not out:
                self.ok = False
                break
            if len(out) == 1:
                # Staged clauses must be live before the unit propagates:
                # the per-clause path attaches each clause before the next
                # unit's propagation can walk its watches.
                self._flush_bulk(staged, staged_sizes)
                self._unchecked_enqueue(out[0], NO_CLAUSE)
                self.ok = self._propagate() == NO_CLAUSE
                if not self.ok and proof is not None:
                    proof.append(("a", ()))
                continue
            staged.extend(out)
            staged_sizes.append(len(out))
        self._flush_bulk(staged, staged_sizes)
        return self.ok

    def _add_clauses_bulk_native(self, flat: Sequence[int], sizes: Sequence[int]) -> bool:
        """Native-kernel bulk load: C-side normalization + bulk attach.

        Semantically identical to the pure-Python loops in
        :meth:`add_clauses_bulk` (``k_normalize_clauses`` mirrors the
        add_clause normalization literal for literal), but the per-clause
        sort/dedup/level-0 work runs in C over typed buffers and control
        only returns to Python at unit boundaries and for the final flush.
        Only used when proof logging is off — proof lines depend on the
        pre-normalization literals, which the C path does not report.
        """
        if not self.ok:
            return False
        ffi, lib = self._k_ffi, self._k_lib
        n = len(sizes)
        flat_buf = (
            flat
            if isinstance(flat, array) and flat.typecode == "i"
            else array("i", flat)
        )
        sizes_buf = (
            sizes
            if isinstance(sizes, array) and sizes.typecode == "i"
            else array("i", sizes)
        )
        # The C normalizer compacts survivors in place into out_flat, so
        # its capacity requirement is exactly len(flat) (kept literals of
        # finished clauses plus the scratch copy of the current clause
        # never exceed the raw cursor).
        out_flat = array("i", bytes(4 * len(flat_buf)))
        out_sizes = array("i", bytes(4 * n))
        p_flat = ffi.cast("const int32_t *", _addr(flat_buf))
        p_sizes = ffi.cast("const int32_t *", _addr(sizes_buf))
        p_oflat = ffi.cast("int32_t *", _addr(out_flat))
        p_osizes = ffi.cast("int32_t *", _addr(out_sizes))
        io = ffi.new("int32_t[5]")
        self._k_sync()  # bind assigns before C reads level-0 truth values
        fo = fs = 0  # flushed-prefix cursors into the out buffers
        while True:
            rc = lib.k_normalize_clauses(
                self._kern, p_flat, p_sizes, n, p_oflat, p_osizes, io
            )
            # Land the staged prefix first: clauses must be live before
            # the next unit propagates (matching the per-clause order).
            self._flush_bulk_range(out_flat, fo, io[2], out_sizes, fs, io[3])
            fo, fs = io[2], io[3]
            if rc == 0:
                return self.ok
            if rc == 2:
                self.ok = False
                return False
            self._unchecked_enqueue(io[4], NO_CLAUSE)
            self.ok = self._propagate() == NO_CLAUSE
            if not self.ok:
                return False

    def _flush_bulk_range(
        self,
        out_flat: "array[int]",
        lo: int,
        hi: int,
        out_sizes: "array[int]",
        slo: int,
        shi: int,
    ) -> None:
        """Land normalized clauses ``out_sizes[slo:shi]`` (literals
        ``out_flat[lo:hi]``): one arena bulk alloc, Python bin/ter watch
        mirrors, and one native attach call."""
        if slo == shi:
            return
        chunk = out_flat[lo:hi]
        sizes_chunk = out_sizes[slo:shi]
        crefs = self.arena.alloc_bulk(chunk, sizes_chunk)
        self.clauses.extend(crefs)
        wb = self.watches_bin
        wt = self.watches_ter
        base = 0
        for sz in sizes_chunk:
            if sz == 2:
                l0 = chunk[base]
                l1 = chunk[base + 1]
                wb[l0 ^ 1].append(l1)
                wb[l1 ^ 1].append(l0)
            elif sz == 3:
                l0 = chunk[base]
                l1 = chunk[base + 1]
                l2 = chunk[base + 2]
                wt[l0 ^ 1].extend((l1, l2))
                wt[l1 ^ 1].extend((l0, l2))
                wt[l2 ^ 1].extend((l0, l1))
            base += sz
        # alloc_bulk bumped arena.version; rebind before the kernel walks
        # the new cref range.
        self._k_sync()
        self._k_lib.k_load_clauses(self._kern, crefs.start, len(crefs))

    def _flush_bulk(self, staged: List[int], staged_sizes: List[int]) -> None:
        """Land staged (already normalized) clauses: one arena bulk alloc,
        python bin/ter watch mirrors, and one native attach call."""
        if not staged_sizes:
            return
        crefs = self.arena.alloc_bulk(staged, staged_sizes)
        self.clauses.extend(crefs)
        if self._kern is not None and self.TERNARY_SPECIAL:
            # alloc_bulk laid the clauses out in staging order, so the
            # bin/ter Python mirrors can be built straight from the local
            # staged buffer without touching the arena again.
            wb = self.watches_bin
            wt = self.watches_ter
            base = 0
            for sz in staged_sizes:
                if sz == 2:
                    l0 = staged[base]
                    l1 = staged[base + 1]
                    wb[l0 ^ 1].append(l1)
                    wb[l1 ^ 1].append(l0)
                elif sz == 3:
                    l0 = staged[base]
                    l1 = staged[base + 1]
                    l2 = staged[base + 2]
                    wt[l0 ^ 1].extend((l1, l2))
                    wt[l1 ^ 1].extend((l0, l2))
                    wt[l2 ^ 1].extend((l0, l1))
                base += sz
            # alloc_bulk bumped arena.version, so this rebinds the arena
            # views before the kernel walks the new cref range.
            self._k_sync()
            self._k_lib.k_load_clauses(self._kern, crefs.start, len(crefs))
        else:
            for cref in crefs:
                self._attach(cref)
        staged.clear()
        staged_sizes.clear()

    def clause_literals(self, cref: int) -> List[int]:
        """The literals of clause ``cref`` (a fresh list)."""
        return self.arena.literals(cref)

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------

    def _attach(self, cref: int) -> None:
        arena = self.arena
        base = arena.start[cref]
        l0 = arena.lits[base]
        l1 = arena.lits[base + 1]
        if arena.size[cref] == 2:
            # Binary clause: its whole content lives in the binary watch
            # lists, so propagation never dereferences the arena for it.
            # The Python lists stay authoritative even in native mode
            # (inprocessing reads them directly); the kernel keeps an
            # identically-ordered C mirror because propagation scans it.
            self.watches_bin[l0 ^ 1].append(l1)
            self.watches_bin[l1 ^ 1].append(l0)
            if self._kern is not None:
                self._k_lib.k_attach_bin(self._kern, l0, l1)
            return
        if self.TERNARY_SPECIAL and arena.size[cref] == 3:
            # Ternary clause: scan-only entries under all three literals.
            l2 = arena.lits[base + 2]
            self.watches_ter[l0 ^ 1].extend((l1, l2))
            self.watches_ter[l1 ^ 1].extend((l0, l2))
            self.watches_ter[l2 ^ 1].extend((l0, l1))
            if self._kern is not None:
                self._k_lib.k_attach_ter(self._kern, l0, l1, l2)
            return
        if self._kern is not None:
            # N-ary watch lists are rewritten *by* propagation (blocker
            # updates, swap-removes, watch moves), so in native mode they
            # live only on the C side; k_copy_list reads them back for
            # invariant checks.
            self._k_lib.k_attach_nary(self._kern, cref, l0, l1)
            return
        w0 = self.watches[l0 ^ 1]
        w0.append(cref)
        w0.append(l1)
        w1 = self.watches[l1 ^ 1]
        w1.append(cref)
        w1.append(l0)

    def _unchecked_enqueue(self, lit: int, reason: int) -> None:
        var = lit >> 1
        self.assigns_lit[lit] = TRUE
        self.assigns_lit[lit ^ 1] = FALSE
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail[self.trail_size] = lit
        self.trail_size += 1

    def _propagate(self) -> int:
        """Unit propagation; returns a conflicting cref or ``NO_CLAUSE``.

        The hot loop of the whole repository.  Every watcher entry carries a
        *blocker* literal (the other watched literal at attach time): when
        the blocker is already true the clause is satisfied and the arena is
        never touched.  Watchers of dead clauses are dropped lazily here,
        which is what lets :meth:`_reduce_db` delete in O(1).

        Under the native kernel the identical loop runs in C over the same
        state (:meth:`_propagate_native` / kernel.c).
        """
        if self._kern is not None:
            return self._propagate_native()
        watches = self.watches
        watches_bin = self.watches_bin
        watches_ter = self.watches_ter
        assigns_lit = self.assigns_lit
        level = self.level
        reason = self.reason
        arena = self.arena
        alits = arena.lits
        astart = arena.start
        asize = arena.size
        aspos = arena.spos
        trail = self.trail
        qhead = self.qhead
        qstart = qhead
        trail_size = self.trail_size
        dlevel = len(self.trail_lim)
        confl = NO_CLAUSE
        while qhead < trail_size:
            p = trail[qhead]
            qhead += 1
            false_lit = p ^ 1
            breason = BIN_BASE - (false_lit << 1)
            # Binary clauses first: one flat list of implied literals,
            # no watcher rewriting, no arena access.
            for other in watches_bin[p]:
                vo = assigns_lit[other]
                if vo < 0:
                    assigns_lit[other] = 1
                    assigns_lit[other ^ 1] = 0
                    var = other >> 1
                    level[var] = dlevel
                    reason[var] = breason
                    trail[trail_size] = other
                    trail_size += 1
                elif vo == 0:  # other is FALSE -> conflict
                    confl = BIN_BASE
                    self._confl_lits = (other, false_lit)
                    break
            if confl != NO_CLAUSE:
                break
            # Ternary clauses: scan the (a, b) pairs; a clause is acted on
            # only when one co-literal is false and the other unassigned
            # (unit) or false too (conflict) -- no rewriting, no arena.
            wt = watches_ter[p]
            if wt:
                tbase = (false_lit << 33) | 1
                for ti in range(0, len(wt), 2):
                    a = wt[ti]
                    va = assigns_lit[a]
                    if va > 0:
                        continue
                    b = wt[ti + 1]
                    vb = assigns_lit[b]
                    if vb > 0:
                        continue
                    if va < 0:
                        if vb < 0:
                            continue  # two unassigned: not unit yet
                        assigns_lit[a] = 1
                        assigns_lit[a ^ 1] = 0
                        var = a >> 1
                        level[var] = dlevel
                        reason[var] = BIN_BASE - (tbase | (b << 1))
                        trail[trail_size] = a
                        trail_size += 1
                    elif vb < 0:
                        assigns_lit[b] = 1
                        assigns_lit[b ^ 1] = 0
                        var = b >> 1
                        level[var] = dlevel
                        reason[var] = BIN_BASE - (tbase | (a << 1))
                        trail[trail_size] = b
                        trail_size += 1
                    else:  # all three false -> conflict
                        confl = BIN_BASE
                        self._confl_lits = (false_lit, a, b)
                        break
                if confl != NO_CLAUSE:
                    break
            ws = watches[p]
            if not ws:
                continue
            n = len(ws)
            # Fast read-only scan: as long as blockers are true the list
            # needs no rewriting at all.
            i = 0
            while i < n and assigns_lit[ws[i + 1]] > 0:
                i += 2
            if i == n:
                continue
            # Swap-remove scan: surviving watchers are left in place (no
            # copy-back at all); a watcher that moves to another literal is
            # deleted by swapping the current tail pair into its slot, and
            # that pair is then processed in the same position.
            while i < n:
                blocker = ws[i + 1]
                if assigns_lit[blocker] > 0:
                    i += 2
                    continue
                cref = ws[i]
                sz = asize[cref]
                if sz < 0:  # dead clause: drop its watcher lazily
                    n -= 2
                    ws[i] = ws[n]
                    ws[i + 1] = ws[n + 1]
                    continue
                base = astart[cref]
                # Ensure the false literal is at position 1.
                first = alits[base]
                if first == false_lit:
                    first = alits[base + 1]
                    alits[base] = first
                    alits[base + 1] = false_lit
                v0 = assigns_lit[first]
                if first != blocker and v0 > 0:
                    ws[i + 1] = first  # better blocker for future scans
                    i += 2
                    continue
                # Look for a new literal to watch, resuming the circular
                # scan where this clause's previous search stopped so a
                # long false prefix is never rescanned (positional memory).
                sp = aspos[cref]
                found = False
                for k in range(base + sp, base + sz):
                    lk = alits[k]
                    if assigns_lit[lk] != 0:
                        found = True
                        break
                if not found:
                    for k in range(base + 2, base + sp):
                        lk = alits[k]
                        if assigns_lit[lk] != 0:
                            found = True
                            break
                if found:
                    alits[base + 1] = lk
                    alits[k] = false_lit
                    aspos[cref] = k - base
                    wl = watches[lk ^ 1]
                    wl.append(cref)
                    wl.append(first)
                    n -= 2
                    ws[i] = ws[n]
                    ws[i + 1] = ws[n + 1]
                    continue
                # Clause is unit or conflicting.
                ws[i + 1] = first
                if v0 == 0:  # first is FALSE -> conflict
                    confl = cref
                    break
                i += 2
                assigns_lit[first] = 1
                assigns_lit[first ^ 1] = 0
                var = first >> 1
                level[var] = dlevel
                reason[var] = cref
                trail[trail_size] = first
                trail_size += 1
            if n != len(ws):
                del ws[n:]
            if confl != NO_CLAUSE:
                break
        self.qhead = qhead
        self.trail_size = trail_size
        self.stats.propagations += qhead - qstart
        return confl

    def _k_bind_vars(self) -> None:
        """(Re)bind the per-variable buffers' raw addresses into the kernel.

        ``array.buffer_info()`` hands out the base address *without*
        exporting the buffer, so Python stays free to grow the arrays; the
        trade is that any growth may realloc and dangle the bound pointer.
        Safe because the only growth site is :meth:`new_var`, after which
        ``self._k_nvars != self.n_vars`` forces a rebind before the next
        kernel call.
        """
        order = self.order
        self._k_lib.k_bind_vars(
            self._kern,
            _addr(self.assigns_lit),
            _addr(self.polarity),
            _addr(self.seen),
            _addr(self.level),
            _addr(self.reason),
            _addr(self.trail),
            _addr(self.activity),
            _addr(order.heap),
            _addr(order.indices),
            self.n_vars,
        )
        self._k_nvars = self.n_vars

    def _k_bind_arena(self) -> None:
        """(Re)bind the arena buffers; stale whenever arena.version moved
        (every alloc may extend/realloc, every compact replaces ``lits``)."""
        arena = self.arena
        self._k_lib.k_bind_arena(
            self._kern,
            _addr(arena.lits),
            _addr(arena.start),
            _addr(arena.size),
            _addr(arena.spos),
            _addr(arena.learnt),
            _addr(arena.act),
            _addr(arena.touch),
        )
        self._k_aver = arena.version

    def _k_sync(self) -> None:
        """Rebind any kernel buffer views invalidated since the last call."""
        if self._k_nvars != self.n_vars:
            self._k_bind_vars()
        if self._k_aver != self.arena.version:
            self._k_bind_arena()

    def _propagate_native(self) -> int:
        """Unit propagation in the compiled kernel (byte-equivalent to
        :meth:`_propagate`).

        The hot path passes only scalars: buffer pointers are pre-bound in
        the kernel and refreshed by the generation checks below.
        """
        lib = self._k_lib
        if self._k_nvars != self.n_vars:
            self._k_bind_vars()
        if self._k_aver != self.arena.version:
            self._k_bind_arena()
        out = self._k_out
        qstart = self.qhead
        confl = lib.k_propagate(
            self._kern, self.trail_size, self.qhead, len(self.trail_lim), out
        )
        self.qhead = out[0]
        self.trail_size = out[1]
        n_confl = out[2]
        if n_confl == 2:
            self._confl_lits = (out[3], out[4])
        elif n_confl == 3:
            self._confl_lits = (out[3], out[4], out[5])
        self.stats.propagations += self.qhead - qstart
        return int(confl)

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _new_decision_level(self) -> None:
        self.trail_lim.append(self.trail_size)

    def _cancel_until(self, target_level: int) -> None:
        if len(self.trail_lim) <= target_level:
            return
        bound = self.trail_lim[target_level]
        if self._kern is not None:
            self._k_sync()
            order = self.order
            order.n = self._k_lib.k_cancel_until(
                self._kern, order.n, self.trail_size, bound
            )
        else:
            trail = self.trail
            assigns_lit = self.assigns_lit
            polarity = self.polarity
            reason = self.reason
            order = self.order
            for idx in range(self.trail_size - 1, bound - 1, -1):
                lit = trail[idx]
                var = lit >> 1
                assigns_lit[lit] = UNDEF
                assigns_lit[lit ^ 1] = UNDEF
                polarity[var] = bool(lit & 1)
                reason[var] = NO_CLAUSE
                if not order.in_heap(var):
                    order.insert(var)
        self.trail_size = bound
        del self.trail_lim[target_level:]
        self.qhead = bound

    def _var_bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > self.RESCALE_LIMIT:
            inv = 1.0 / self.RESCALE_LIMIT
            for i in range(self.n_vars):
                self.activity[i] *= inv
            self.var_inc *= inv
        self.order.decrease(var)

    def _cla_bump(self, cref: int) -> None:
        act = self.arena.act
        act[cref] += self.cla_inc
        if act[cref] > self.RESCALE_LIMIT:
            inv = 1.0 / self.RESCALE_LIMIT
            for c in self.learnts:
                act[c] *= inv
            self.cla_inc *= inv

    def _analyze(self, confl: int) -> tuple:
        """First-UIP conflict analysis.

        Returns ``(learnt_clause_lits, backtrack_level, lbd)``.
        """
        if self._kern is not None:
            return self._analyze_native(confl)
        seen = self.seen
        level = self.level
        trail = self.trail
        reason = self.reason
        arena = self.arena
        alits = arena.lits
        astart = arena.start
        asize = arena.size
        alearnt = arena.learnt
        atier = arena.tier
        atouch = arena.touch
        nconf = self.stats.conflicts
        learnt: List[int] = [0]  # placeholder for the asserting literal
        to_clear: List[int] = []
        counter = 0
        p = -1
        index = self.trail_size - 1
        cur_level = len(self.trail_lim)
        cref = confl
        while True:
            if cref < NO_CLAUSE:
                # Binary/ternary clause packed into the reference itself:
                # as a reason the other literal(s) decode from the tag; as
                # the initial conflict all false literals are in
                # _confl_lits (the tag is just the BIN_BASE sentinel).
                span = _packed_reason_lits(cref) if p >= 0 else self._confl_lits
            else:
                assert cref != NO_CLAUSE
                if alearnt[cref]:
                    self._cla_bump(cref)
                    # Usage stamp: tier2 clauses not stamped between two
                    # reductions are demoted to the local tier.
                    atouch[cref] = nconf
                base = astart[cref]
                # Skip position 0 of reason clauses: it holds the implied
                # literal (the propagation loop maintains that invariant).
                start = base + 1 if p >= 0 else base
                span = alits[start : base + asize[cref]]
            for q in span:
                var = q >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    to_clear.append(var)
                    self._var_bump(var)
                    if level[var] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            cref = reason[p >> 1]
            index -= 1
            counter -= 1
            if counter <= 0:
                break
        learnt[0] = p ^ 1

        # Conflict-clause minimisation: drop literals implied by the rest.
        kept = [learnt[0]]
        for q in learnt[1:]:
            r = reason[q >> 1]
            if r == NO_CLAUSE:
                kept.append(q)
                continue
            if r < NO_CLAUSE:
                for x in _packed_reason_lits(r):
                    xv = x >> 1
                    if not seen[xv] and level[xv] > 0:
                        kept.append(q)
                        break
                continue
            redundant = True
            base = astart[r]
            for k in range(base, base + asize[r]):
                x = alits[k]
                if x == q ^ 1:
                    continue
                xv = x >> 1
                if not seen[xv] and level[xv] > 0:
                    redundant = False
                    break
            if not redundant:
                kept.append(q)
        learnt = kept

        # Compute backtrack level and LBD.
        if len(learnt) == 1:
            bt_level = 0
        else:
            max_i = 1
            for i in range(2, len(learnt)):
                if level[learnt[i] >> 1] > level[learnt[max_i] >> 1]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt_level = level[learnt[1] >> 1]
        lbd_levels = {level[q >> 1] for q in learnt}
        for var in to_clear:
            seen[var] = 0
        return learnt, bt_level, len(lbd_levels)

    def _analyze_native(self, confl: int) -> tuple:
        """First-UIP conflict analysis in the compiled kernel.

        Statement-for-statement equivalent to :meth:`_analyze`, including
        the VSIDS variable/clause bumps, rescales and heap percolation the
        Python loop performs inline — those mutate ``var_inc``/``cla_inc``,
        which is why the kernel hands the updated values back.
        """
        ffi = self._k_ffi
        lib = self._k_lib
        self._k_sync()
        n_vars = self.n_vars
        if self._k_learnt_cap < n_vars + 1:
            self._k_learnt_cap = max(2 * self._k_learnt_cap, n_vars + 1)
            self._k_learnt = ffi.new("int32_t[]", self._k_learnt_cap)
        confl_buf = self._k_confl
        confl_n = 0
        if confl < NO_CLAUSE:
            lits = self._confl_lits
            confl_n = len(lits)
            for i in range(confl_n):
                confl_buf[i] = lits[i]
        out_ints = self._k_ints
        out_dbl = self._k_dbl
        lib.k_analyze(
            self._kern,
            confl,
            confl_buf,
            confl_n,
            n_vars,
            len(self.arena.size),
            self.trail_size,
            len(self.trail_lim),
            self.stats.conflicts,
            self.var_inc,
            self.cla_inc,
            self._k_learnt,
            out_ints,
            out_dbl,
        )
        self.var_inc = out_dbl[0]
        self.cla_inc = out_dbl[1]
        learnt = list(ffi.unpack(self._k_learnt, out_ints[0]))
        return learnt, int(out_ints[1]), int(out_ints[2])

    def _analyze_final(self, p: int) -> None:
        """Compute the failed-assumption core.

        ``p`` is an assumption literal found FALSE under the other
        assumptions.  Afterwards :attr:`core` contains a subset of the
        assumption literals sufficient for unsatisfiability (including ``p``).
        """
        self.core = [p]
        if not self.trail_lim:
            return
        seen = self.seen
        arena = self.arena
        alits = arena.lits
        astart = arena.start
        asize = arena.size
        seen[p >> 1] = 1
        for idx in range(self.trail_size - 1, self.trail_lim[0] - 1, -1):
            lit = self.trail[idx]
            var = lit >> 1
            if not seen[var]:
                continue
            r = self.reason[var]
            if r == NO_CLAUSE:
                # A decision inside the assumption prefix is an assumption.
                if lit != p:
                    self.core.append(lit)
            elif r < NO_CLAUSE:
                for x in _packed_reason_lits(r):
                    if self.level[x >> 1] > 0:
                        seen[x >> 1] = 1
            else:
                base = astart[r]
                for k in range(base + 1, base + asize[r]):
                    x = alits[k]
                    if self.level[x >> 1] > 0:
                        seen[x >> 1] = 1
            seen[var] = 0
        seen[p >> 1] = 0

    def _detach_small(self, cref: int) -> None:
        """Eagerly remove a binary/ternary clause's scan-only watch entries.

        Binary and ternary watchers carry no clause reference, so a dead
        clause of size <= 3 can never be dropped lazily by the propagation
        loop — it would keep propagating forever.  Anything that frees such
        a clause must call this first.
        """
        arena = self.arena
        base = arena.start[cref]
        sz = arena.size[cref]
        lits = arena.lits
        if sz == 2:
            a, b = lits[base], lits[base + 1]
            self.watches_bin[a ^ 1].remove(b)
            self.watches_bin[b ^ 1].remove(a)
            if self._kern is not None:
                self._k_lib.k_detach_bin(self._kern, a, b)
            return
        if sz == 3 and self.TERNARY_SPECIAL:
            a, b, c = lits[base], lits[base + 1], lits[base + 2]
            for x, y, z in ((a, b, c), (b, a, c), (c, a, b)):
                wt = self.watches_ter[x ^ 1]
                for i in range(0, len(wt), 2):
                    p, q = wt[i], wt[i + 1]
                    if (p == y and q == z) or (p == z and q == y):
                        wt[i] = wt[-2]
                        wt[i + 1] = wt[-1]
                        del wt[-2:]
                        break
            if self._kern is not None:
                self._k_lib.k_detach_ter(self._kern, a, b, c)
        # Size-3 clauses with TERNARY_SPECIAL off live in the n-ary watch
        # lists and are dropped lazily like any other n-ary clause.

    def _register_learnt(self, cref: int, lbd: int) -> None:
        """File a learnt clause into its tier by LBD and stamp its usage."""
        arena = self.arena
        if lbd <= self.TIER_CORE_LBD:
            self.learnts_core.append(cref)
        elif lbd <= self.TIER2_LBD:
            arena.tier[cref] = 1
            self.learnts_tier2.append(cref)
        else:
            arena.tier[cref] = 2
            self.learnts_local.append(cref)
        arena.touch[cref] = self.stats.conflicts

    def _reduce_db(self) -> None:
        """Tiered learnt-clause reduction.

        Core clauses are kept unconditionally.  Tier2 clauses not used by
        conflict analysis since the previous reduction are demoted to the
        local tier; local clauses promoted by analysis (tier flag rewritten
        in place) move up to tier2.  The local tier then loses its least
        active half.  Deletion is O(1) per n-ary clause (lazy watcher
        drop); binary/ternary clauses are detached eagerly because their
        scan-only watch lists cannot detect death.  When enough of the
        arena is dead storage, one garbage-collection pass purges the
        watch lists and compacts the literal array.
        """
        arena = self.arena
        act = arena.act
        atier = arena.tier
        atouch = arena.touch
        astart = arena.start
        asize = arena.size
        alits = arena.lits
        assigns_lit = self.assigns_lit
        reason = self.reason
        cutoff = self._last_reduce_conflicts
        core = [c for c in self.learnts_core if asize[c] >= 0]
        tier2: List[int] = []
        local: List[int] = []
        for cref in self.learnts_tier2:
            if asize[cref] < 0:
                continue
            if atouch[cref] < cutoff:
                atier[cref] = 2  # stale: demote
                local.append(cref)
            else:
                tier2.append(cref)
        for cref in self.learnts_local:
            if asize[cref] < 0:
                continue
            local.append(cref)
        local.sort(key=lambda c: act[c])
        evict_until = len(local) // 2
        kept: List[int] = []
        for i, cref in enumerate(local):
            base = astart[cref]
            sz = asize[cref]
            first = alits[base]
            locked = reason[first >> 1] == cref and assigns_lit[first] > 0
            if not locked and sz <= 3:
                # Binary/ternary propagations store packed-literal reasons,
                # not crefs, so the test above cannot see a locked small
                # clause.  Deleting one anyway would poison the proof log:
                # the solver keeps resolving through the packed reason while
                # the checker honours the deletion, so a later learnt built
                # on that implication is no longer RUP.  Match the packed
                # literals instead.
                lits_c = alits[base : base + sz]
                for lit in lits_c:
                    if assigns_lit[lit] > 0:
                        r = reason[lit >> 1]
                        if r < NO_CLAUSE and sorted(
                            _packed_reason_lits(r)
                        ) == sorted(x for x in lits_c if x != lit):
                            locked = True
                            break
            if i >= evict_until or locked:
                kept.append(cref)
                continue
            if self.proof is not None:
                self.proof.append(("d", tuple(alits[base : base + asize[cref]])))
            if asize[cref] <= 3:
                self._detach_small(cref)
            arena.free(cref)
            self.stats.removed_clauses += 1
        self.learnts_core = core
        self.learnts_tier2 = tier2
        self.learnts_local = kept
        self._last_reduce_conflicts = self.stats.conflicts
        if arena.needs_gc():
            self._garbage_collect()

    def _garbage_collect(self) -> None:
        """Purge dead watchers, compact the arena, recycle dead crefs."""
        if self._kern is not None:
            self._k_sync()
            self._k_lib.k_purge_dead(self._kern)
        else:
            asize = self.arena.size
            for ws in self.watches:
                j = 0
                for i in range(0, len(ws), 2):
                    cref = ws[i]
                    if asize[cref] >= 0:
                        ws[j] = cref
                        ws[j + 1] = ws[i + 1]
                        j += 2
                del ws[j:]
        self.arena.compact()
        self.arena.recycle()

    def _pick_branch_lit(self) -> int:
        order = self.order
        if self._kern is not None:
            if self._k_nvars != self.n_vars:
                self._k_bind_vars()
            heap_n = self._k_heapn
            heap_n[0] = order.n
            lit = self._k_lib.k_pick_branch(self._kern, heap_n)
            order.n = heap_n[0]
            return int(lit)
        assigns_lit = self.assigns_lit
        while len(order):
            var = order.pop()
            if assigns_lit[var << 1] < 0:
                return 2 * var + (1 if self.polarity[var] else 0)
        return -1

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> SatResult:
        """Solve the current formula under ``assumptions``.

        Returns a :class:`SatResult` (``UNKNOWN`` when a budget was
        exhausted or the tracer cancelled).  On ``SAT`` the satisfying
        assignment is in :attr:`model`; on ``UNSAT`` under assumptions,
        :attr:`core` holds a subset of failed assumptions.
        """
        self.stats.solve_calls += 1
        self.model = []
        self.core = []
        tracer = self.tracer
        before = self.stats.snapshot() if tracer is not None else None
        started = time.monotonic()
        if not self.ok:
            return self._finish(SatResult.UNSAT, before, started)
        deadline = started + time_budget if time_budget else None
        conflict_limit = (
            self.stats.conflicts + conflict_budget if conflict_budget else None
        )
        assumptions = list(assumptions)
        if (
            self.inprocessing
            and self.stats.conflicts - self._last_inprocess
            >= self.SOLVE_INPROCESS_DELTA
        ):
            # Solve entry is a level-0 safe point too.  Incremental callers
            # accumulate learnts and level-0 units *between* queries faster
            # than any single query reaches the restart-time interval, so
            # a fresh query over a grown database is where vivification and
            # subsumption pay off.  Probing is skipped here: on structured
            # incremental encodings its trail perturbation costs more
            # conflicts than its failed literals save.
            self._inprocess_step(probe=False, vivify=False)
            if not self.ok:
                return self._finish(SatResult.UNSAT, before, started)
        if self._sanitizer is not None:
            # Solve entry is a level-0 safe point (assumptions not yet
            # established, any entry inprocessing done).
            self._sanitizer.at_safe_point("solve-entry")
        restart_num = 0
        restart_budget = luby(2.0, restart_num) * self.RESTART_BASE
        conflicts_this_restart = 0
        if self.max_learnts < len(self.clauses) / 3:
            self.max_learnts = len(self.clauses) / 3
        arena = self.arena

        status: Optional[bool] = None
        while status is None:
            confl = self._propagate()
            if confl != NO_CLAUSE:
                self.stats.conflicts += 1
                conflicts_this_restart += 1
                if not self.trail_lim:
                    self.ok = False
                    status = False
                    if self.proof is not None:
                        self.proof.append(("a", ()))
                    break
                learnt, bt_level, lbd = self._analyze(confl)
                if self.proof is not None:
                    self.proof.append(("a", tuple(learnt)))
                # Never undo the assumption prefix permanently: backtracking
                # below it is fine, the assumption loop re-establishes it.
                self._cancel_until(bt_level)
                if len(learnt) == 1:
                    self._unchecked_enqueue(learnt[0], NO_CLAUSE)
                else:
                    cref = arena.alloc(learnt, learnt=True, lbd=lbd)
                    self._register_learnt(cref, lbd)
                    self._attach(cref)
                    self._cla_bump(cref)
                    self._unchecked_enqueue(learnt[0], cref)
                self.stats.lbd_counts[lbd] = self.stats.lbd_counts.get(lbd, 0) + 1
                self.stats.learnt_literals += len(learnt)
                if self.share is not None:
                    self.share.offer(learnt, lbd)
                self.var_inc *= self.VAR_DECAY
                self.cla_inc *= self.CLA_DECAY
                continue

            # No conflict.
            if conflict_limit is not None and self.stats.conflicts >= conflict_limit:
                break
            if deadline is not None and time.monotonic() > deadline:
                break
            if conflicts_this_restart >= restart_budget:
                restart_num += 1
                self.stats.restarts += 1
                restart_budget = luby(2.0, restart_num) * self.RESTART_BASE
                conflicts_this_restart = 0
                self._cancel_until(0)
                if self.share is not None:
                    # Restart = level-0 safe point: flush exports, install
                    # foreign clauses.  An import can refute the formula.
                    self._share_exchange()
                    if not self.ok:
                        status = False
                        break
                if self.inprocessing and self.stats.conflicts >= self._next_inprocess:
                    # Inprocessing shares the clause-import safe-point
                    # contract: level 0, assumptions undone, so every
                    # derivation is an assumption-free formula consequence.
                    self._inprocess_step()
                    if not self.ok:
                        status = False
                        break
                if self._sanitizer is not None:
                    # The restart safe point: level 0, sharing exchanged,
                    # inprocessing (and any GC it triggered) finished — the
                    # state every invariant is specified against.
                    self._sanitizer.at_safe_point("restart")
                if self.tracer is not None:
                    # Restarts are the solver's safe points: surface progress
                    # and poll the cooperative-cancellation flag so a long
                    # solve can be aborted between restarts.
                    self.tracer.event(
                        "solver.restart",
                        restarts=self.stats.restarts,
                        conflicts=self.stats.conflicts,
                        learnts=self.num_learnts,
                    )
                    if self.tracer.cancelled:
                        break
                continue
            if (
                len(self.learnts_local) + len(self.learnts_tier2) - self.trail_size
                >= self.max_learnts
                and self.trail_lim
            ):
                self._reduce_db()
                self.max_learnts *= 1.1

            # Establish assumptions, then decide.
            next_lit = -1
            while len(self.trail_lim) < len(assumptions):
                p = assumptions[len(self.trail_lim)]
                val = self.value(p)
                if val == TRUE:
                    self._new_decision_level()  # dummy level
                elif val == FALSE:
                    self._analyze_final(p)
                    if self.proof is not None:
                        # Terminal step for assumption-conditioned UNSAT:
                        # the failed core propagates to a conflict against
                        # the current database (every reason clause is
                        # logged), so its negation clause is RUP here.  The
                        # checker accepts the log via ``assumptions=``.
                        self.proof.append(("a", tuple(lit ^ 1 for lit in self.core)))
                    status = False
                    break
                else:
                    next_lit = p
                    break
            if status is not None:
                break
            if next_lit == -1:
                next_lit = self._pick_branch_lit()
                if next_lit == -1:
                    status = True  # all variables assigned
                    break
                self.stats.decisions += 1
            self._new_decision_level()
            self._unchecked_enqueue(next_lit, NO_CLAUSE)

        if status is True:
            assigns_lit = self.assigns_lit
            self.model = [assigns_lit[v << 1] > 0 for v in range(self.n_vars)]
            if self._recon is not None:
                # Bounded variable elimination removed variables; replay
                # the elimination witnesses so the model covers them.
                self.model = self._recon.extend(self.model)[: self.n_vars]
        self._cancel_until(0)
        if self._sanitizer is not None:
            self._sanitizer.at_safe_point("solve-exit")
        return self._finish(SatResult.from_bool(status), before, started)

    def _finish(
        self, result: SatResult, before: Optional[dict], started: float
    ) -> SatResult:
        """Emit the per-solve stats snapshot (when a tracer is attached)."""
        # Accumulate before the tracer snapshot so the emitted cumulative
        # includes this call and d_solve_wall_sec is this call's wall time.
        self.stats.solve_wall_sec += time.monotonic() - started
        if self.tracer is not None:
            after = self.stats.snapshot()
            attrs = {"result": result.value, "time": time.monotonic() - started}
            # Per-call deltas tell the optimization loop where each
            # iteration's effort went; cumulative values mirror as_dict().
            for key, value in after.items():
                attrs[key] = value
                if before is not None:
                    attrs["d_" + key] = value - before[key]
            attrs["kernel"] = self.kernel
            attrs["n_vars"] = self.n_vars
            attrs["n_clauses"] = len(self.clauses)
            attrs["n_learnts"] = self.num_learnts
            attrs["lbd_counts"] = {
                str(k): v for k, v in sorted(self.stats.lbd_counts.items())
            }
            self.tracer.event("solver.solve", **attrs)
        return result

    # ------------------------------------------------------------------
    # Search guidance
    # ------------------------------------------------------------------

    def warm_start(self, hints) -> None:
        """Seed the phase-saving polarities from a (partial) assignment.

        ``hints`` maps variable index -> bool (or is a sequence of bools).
        The next search will try those values first, which lets callers
        guide the solver with an application-level solution — e.g. reusing
        the previous optimization iteration's model, or a heuristic
        synthesizer's mapping (the paper's Sec. V future-work direction).
        Hints never affect soundness: they only flip decision polarities.
        """
        items = hints.items() if hasattr(hints, "items") else enumerate(hints)
        for var, value in items:
            if not 0 <= var < self.n_vars:
                raise ValueError(f"hint for unknown variable {var}")
            self.polarity[var] = not bool(value)

    def bump_variables(self, variables, amount: float = 1.0) -> None:
        """Raise VSIDS activity of ``variables`` so they are decided early.

        The application-specific variable-ordering hook from the paper's
        future-work list: branching first on, say, mapping variables of the
        busiest qubits measurably changes search behaviour.
        """
        for var in variables:
            if not 0 <= var < self.n_vars:
                raise ValueError(f"cannot bump unknown variable {var}")
            self.activity[var] += amount * self.var_inc
            if self.activity[var] > self.RESCALE_LIMIT:
                inv = 1.0 / self.RESCALE_LIMIT
                for i in range(self.n_vars):
                    self.activity[i] *= inv
                self.var_inc *= inv
            self.order.decrease(var)

    # ------------------------------------------------------------------
    # Clause sharing (cooperating portfolio workers)
    # ------------------------------------------------------------------

    def share_sync(self) -> None:
        """Exchange shared clauses now, if a share client is attached.

        Public safe-point hook for callers that sit between :meth:`solve`
        calls (the solver itself syncs at every restart); a no-op unless at
        decision level 0.
        """
        if self.share is not None and not self.trail_lim:
            self._share_exchange()

    def _share_exchange(self) -> None:
        share = self.share
        imported = share.take_imports()
        if imported:
            self.import_shared(imported)
        self.stats.exported_clauses = share.stats.exported

    def import_shared(self, clauses: Iterable[Sequence[int]]) -> bool:
        """Install foreign learnt clauses at decision level 0.

        The caller asserts the clauses are logical consequences of this
        solver's formula (the share bus guarantees it by matching context
        keys).  Each clause is simplified against the level-0 assignment
        and then added as a learnt clause pinned at LBD 2, which
        :meth:`_reduce_db` never evicts.  Returns the solver's ``ok`` flag
        (an import may refute the formula outright).

        No-op under proof logging: imported clauses are not locally
        derivable, so they would poison the RUP certificate.
        """
        assert not self.trail_lim, "imports only at decision level 0"
        if self.proof is not None:
            return self.ok
        arena = self.arena
        n_vars = self.n_vars
        for lits in clauses:
            if not self.ok:
                break
            out: List[int] = []
            skip = False
            for lit in lits:
                if lit >> 1 >= n_vars:
                    skip = True  # foreign variable: context mismatch guard
                    break
                val = self.assigns_lit[lit]
                if val > 0:
                    skip = True  # satisfied at level 0
                    break
                if val == 0:
                    continue  # falsified at level 0; strip
                out.append(lit)
            if skip:
                continue
            self.stats.imported_clauses += 1
            if not out:
                self.ok = False
                break
            if len(out) == 1:
                self._unchecked_enqueue(out[0], NO_CLAUSE)
                self.ok = self._propagate() == NO_CLAUSE
                continue
            # Pinned at LBD 2: lands in the core tier, which reduction
            # never touches.
            cref = arena.alloc(out, learnt=True, lbd=2)
            self.learnts_core.append(cref)
            self._attach(cref)
        return self.ok

    # ------------------------------------------------------------------
    # Inprocessing (repro.sat.inprocess)
    # ------------------------------------------------------------------

    def _get_inprocessor(self) -> "Inprocessor":
        if self.inprocessor is None:
            from .inprocess import Inprocessor

            self.inprocessor = Inprocessor(self)
        return self.inprocessor

    def _inprocess_step(self, probe: bool = True, vivify: bool = True) -> None:
        """One bounded restart-time inprocessing pass (level 0 only)."""
        before = self.stats.snapshot() if self.tracer is not None else None
        self._get_inprocessor().run(probe=probe, vivify=vivify)
        self.stats.inprocessings += 1
        self._last_inprocess = self.stats.conflicts
        self._next_inprocess = self.stats.conflicts + self.INPROCESS_INTERVAL
        if self.tracer is not None and before is not None:
            after = self.stats.snapshot()
            deltas = {
                "d_" + key: after[key] - before[key]
                for key in (
                    "vivified_clauses",
                    "vivified_literals",
                    "failed_literals",
                    "hyper_binaries",
                    "equivalent_literals",
                    "subsumed_clauses",
                    "strengthened_clauses",
                )
                if after[key] != before[key]
            }
            self.tracer.event(
                "solver.inprocess",
                conflicts=self.stats.conflicts,
                learnts=self.num_learnts,
                ok=self.ok,
                **deltas,
            )

    def simplify(
        self,
        *,
        subsume: bool = True,
        probe: bool = True,
        vivify: bool = True,
        eliminate: bool = False,
        budget: int = 200_000,
    ) -> bool:
        """Run one bounded simplification pass between :meth:`solve` calls.

        The same engine the solver invokes at restart safe points, exposed
        for startup simplification right after encoding.  ``eliminate``
        additionally runs bounded variable elimination over the *thawed*
        variables (see :meth:`thaw`); it is skipped automatically once any
        learnt clauses exist.  ``budget`` caps the pass's propagation work.
        Returns the solver's ``ok`` flag (simplification can refute the
        formula outright).
        """
        if not self.ok:
            return False
        assert not self.trail_lim, "simplify() only at decision level 0"
        self._get_inprocessor().run(
            subsume=subsume,
            probe=probe,
            vivify=vivify,
            eliminate=eliminate,
            budget=budget,
        )
        self.stats.inprocessings += 1
        return self.ok

    def thaw(self, variables: Iterable[int]) -> None:
        """Mark ``variables`` as fair game for bounded variable elimination.

        Everything is frozen by default, which is what keeps assumption
        literals, activation guards and the shared variable prefix intact;
        thaw only variables no caller will ever reference again (e.g. the
        encoder's one-shot auxiliary selectors).
        """
        for var in variables:
            if not 0 <= var < self.n_vars:
                raise ValueError(f"cannot thaw unknown variable {var}")
            self._thawed.add(var)

    def freeze(self, variables: Iterable[int]) -> None:
        """Re-protect previously thawed ``variables`` from elimination."""
        for var in variables:
            self._thawed.discard(var)

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------

    def model_value(self, lit: int) -> bool:
        """Truth value of ``lit`` in the most recent satisfying model."""
        if not self.model:
            raise RuntimeError("no model available; call solve() first")
        return self.model[lit >> 1] ^ bool(lit & 1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    @property
    def num_learnts(self) -> int:
        return (
            len(self.learnts_core)
            + len(self.learnts_tier2)
            + len(self.learnts_local)
        )

    @property
    def learnts(self) -> List[int]:
        """All learnt crefs across the three tiers (a fresh list).

        Read-only view kept for introspection compatibility; mutate the
        per-tier lists (or go through :meth:`_register_learnt`) instead.
        """
        return self.learnts_core + self.learnts_tier2 + self.learnts_local

    def _kernel_list(self, which: int, lit: int) -> List[int]:
        """Copy one C-side watch list out of the kernel (test/debug hook).

        ``which``: 0 = binary, 1 = ternary, 2 = n-ary ``(cref, blocker)``
        pairs.  Returns ``[]`` when no kernel is attached.
        """
        if self._kern is None:
            return []
        ffi = self._k_ffi
        lib = self._k_lib
        n = lib.k_copy_list(self._kern, which, lit, ffi.NULL, 0)
        if n == 0:
            return []
        buf = ffi.new("int32_t[]", n)
        lib.k_copy_list(self._kern, which, lit, buf, n)
        return list(ffi.unpack(buf, n))

    def check_watch_invariants(self) -> None:
        """Verify watcher/arena consistency (test hook; O(watchers))."""
        self.arena.check_invariants()
        arena = self.arena
        if self._kern is not None:
            # The scan-only binary/ternary lists exist twice (authoritative
            # Python + C mirror); they must match exactly, including order.
            for lit in range(2 * self.n_vars):
                if self._kernel_list(0, lit) != list(self.watches_bin[lit]):
                    raise AssertionError(
                        f"binary watch mirror out of sync at literal {lit}"
                    )
                if self._kernel_list(1, lit) != list(self.watches_ter[lit]):
                    raise AssertionError(
                        f"ternary watch mirror out of sync at literal {lit}"
                    )
            nary_lists: List[List[int]] = [
                self._kernel_list(2, lit) for lit in range(2 * self.n_vars)
            ]
        else:
            nary_lists = self.watches
        watched: dict = {}
        bin_watched: set = set()
        for lit, ws in enumerate(nary_lists):
            if len(ws) % 2:
                raise AssertionError(f"odd watcher list length at literal {lit}")
            for i in range(0, len(ws), 2):
                cref = ws[i]
                if cref < 0:
                    raise AssertionError(f"negative cref in n-ary watches at {lit}")
                if arena.is_dead(cref):
                    continue  # lazily-pending removal is legal
                watched.setdefault(cref, []).append(lit ^ 1)
        for lit, bws in enumerate(self.watches_bin):
            for other in bws:
                bin_watched.add((lit ^ 1, other))
        ter_watched: set = set()
        for lit, tws in enumerate(self.watches_ter):
            if len(tws) % 2:
                raise AssertionError(f"odd ternary watch list length at {lit}")
            for i in range(0, len(tws), 2):
                ter_watched.add((lit ^ 1, frozenset((tws[i], tws[i + 1]))))
        for cref in list(self.clauses) + list(self.learnts):
            if arena.is_dead(cref):
                continue
            lits = arena.literals(cref)
            if len(lits) == 2:
                a, b = lits
                if (a, b) not in bin_watched or (b, a) not in bin_watched:
                    raise AssertionError(
                        f"binary clause {cref} {lits} missing watcher pair"
                    )
                continue
            if len(lits) == 3:
                for x in lits:
                    rest = frozenset(l for l in lits if l != x)
                    if (x, rest) not in ter_watched:
                        raise AssertionError(
                            f"ternary clause {cref} {lits} missing entry on {x}"
                        )
                continue
            w = watched.get(cref, [])
            for want in lits[:2]:
                if want not in w:
                    raise AssertionError(
                        f"clause {cref} watched on {w}, expected {lits[:2]}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Solver(vars={self.n_vars}, clauses={len(self.clauses)}, "
            f"learnts={len(self.learnts)}, ok={self.ok})"
        )
