"""A conflict-driven clause-learning (CDCL) SAT solver.

This module is the constraint-solving substrate for the whole repository.  The
original OLSQ2 paper solves its layout-synthesis models with Z3; its winning
configuration bit-blasts every bit-vector variable down to propositional logic
so that Z3's *internal SAT engine* does the actual work.  Since no external
solver is available here, this file implements that engine from scratch in the
MiniSat lineage:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause minimisation,
* VSIDS variable activities with phase saving,
* Luby-sequence restarts,
* learnt-clause database reduction driven by LBD and clause activity,
* incremental solving under assumptions with failed-assumption cores.

Incrementality matters: the paper's iterative depth/SWAP refinement re-solves
a sequence of near-identical models and relies on the solver reusing learned
information between iterations (Sec. III-B).  Assumption-based solving gives
exactly that — learnt clauses survive across :meth:`Solver.solve` calls.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence

from .result import SatResult
from .types import FALSE, TRUE, UNDEF, neg


class Clause(list):
    """A clause is a list of packed literals plus solver metadata.

    Subclassing :class:`list` keeps literal access (``clause[i]``) as fast as
    a plain list in the propagation hot loop while still allowing the solver
    to hang bookkeeping attributes off the object.
    """

    __slots__ = ("learnt", "lbd", "act")

    def __init__(self, lits: Iterable[int], learnt: bool = False):
        super().__init__(lits)
        self.learnt = learnt
        self.lbd = 0
        self.act = 0.0


class SolverStats:
    """Counters describing the work a solver instance has performed."""

    __slots__ = (
        "conflicts",
        "decisions",
        "propagations",
        "restarts",
        "learnt_literals",
        "removed_clauses",
        "solve_calls",
        "lbd_counts",
    )

    def __init__(self) -> None:
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learnt_literals = 0
        self.removed_clauses = 0
        self.solve_calls = 0
        # LBD value -> number of clauses learnt with that LBD (cumulative).
        self.lbd_counts: dict = {}

    def as_dict(self) -> dict:
        d = {name: getattr(self, name) for name in self.__slots__ if name != "lbd_counts"}
        d["lbd_counts"] = dict(self.lbd_counts)
        return d

    def snapshot(self) -> dict:
        """Flat scalar counters (no histogram) — cheap to diff per solve()."""
        return {name: getattr(self, name) for name in self.__slots__ if name != "lbd_counts"}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"SolverStats({inner})"


def luby(y: float, x: int) -> float:
    """Return the ``x``-th term of the Luby restart sequence scaled by ``y``."""
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x = x % size
    return y ** seq


class _VarOrderHeap:
    """Indexed max-heap over variable activities (the VSIDS order)."""

    __slots__ = ("activity", "heap", "indices")

    def __init__(self, activity: List[float]):
        self.activity = activity
        self.heap: List[int] = []
        self.indices: List[int] = []

    def _lt(self, u: int, v: int) -> bool:
        return self.activity[u] > self.activity[v]

    def in_heap(self, v: int) -> bool:
        return v < len(self.indices) and self.indices[v] >= 0

    def _percolate_up(self, i: int) -> None:
        heap, indices = self.heap, self.indices
        x = heap[i]
        while i > 0:
            p = (i - 1) >> 1
            if self._lt(x, heap[p]):
                heap[i] = heap[p]
                indices[heap[p]] = i
                i = p
            else:
                break
        heap[i] = x
        indices[x] = i

    def _percolate_down(self, i: int) -> None:
        heap, indices = self.heap, self.indices
        x = heap[i]
        n = len(heap)
        while True:
            left = 2 * i + 1
            if left >= n:
                break
            right = left + 1
            child = right if right < n and self._lt(heap[right], heap[left]) else left
            if self._lt(heap[child], x):
                heap[i] = heap[child]
                indices[heap[i]] = i
                i = child
            else:
                break
        heap[i] = x
        indices[x] = i

    def grow_to(self, n_vars: int) -> None:
        while len(self.indices) < n_vars:
            self.indices.append(-1)

    def insert(self, v: int) -> None:
        if self.indices[v] >= 0:
            return
        self.indices[v] = len(self.heap)
        self.heap.append(v)
        self._percolate_up(self.indices[v])

    def decrease(self, v: int) -> None:
        """Activity of ``v`` increased; restore heap order."""
        if self.indices[v] >= 0:
            self._percolate_up(self.indices[v])

    def pop(self) -> int:
        heap, indices = self.heap, self.indices
        x = heap[0]
        last = heap.pop()
        indices[x] = -1
        if heap:
            heap[0] = last
            indices[last] = 0
            self._percolate_down(0)
        return x

    def __len__(self) -> int:
        return len(self.heap)


class Solver:
    """Incremental CDCL SAT solver.

    Typical usage::

        solver = Solver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([mk_lit(a), mk_lit(b)])
        assert solver.solve() is SatResult.SAT
        assert solver.solve(assumptions=[mk_lit(a, negative=True)])

    :meth:`solve` returns a :class:`repro.sat.SatResult`:
    :attr:`~SatResult.SAT` (read :attr:`model`), :attr:`~SatResult.UNSAT`
    (read :attr:`core` for failed assumptions), or
    :attr:`~SatResult.UNKNOWN` when a conflict/time budget expired or the
    attached tracer was cancelled.  The enum is truthy exactly on SAT and
    ``==``-compatible with the legacy ``True``/``False``/``None``.
    """

    VAR_DECAY = 1.0 / 0.95
    CLA_DECAY = 1.0 / 0.999
    RESCALE_LIMIT = 1e100
    RESTART_BASE = 100

    def __init__(self, proof_log: bool = False) -> None:
        # When proof logging is on, every clause the solver derives (learnt
        # clauses, strengthened input clauses, the final empty clause) is
        # appended to ``proof`` as ("a", lits); deletions as ("d", lits).
        # repro.sat.proof.check_unsat_proof replays the log by reverse unit
        # propagation, giving an independently checkable UNSAT certificate.
        self.proof: Optional[List[tuple]] = [] if proof_log else None
        # Optional repro.telemetry.Tracer; when set, every solve() emits a
        # "solver.solve" stats-snapshot event and restarts become both
        # "solver.restart" events and cooperative-cancellation poll points.
        # Kept as a plain None-default attribute (not NULL_TRACER) so the
        # disabled-path cost is a single identity check per solve().
        self.tracer = None
        self.n_vars = 0
        self.clauses: List[Clause] = []
        self.learnts: List[Clause] = []
        self.watches: List[List[Clause]] = []
        self.assigns: List[int] = []
        self.level: List[int] = []
        self.reason: List[Optional[Clause]] = []
        self.polarity: List[bool] = []  # saved phases; True = assign negative
        self.activity: List[float] = []
        self.order = _VarOrderHeap(self.activity)
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.seen: List[int] = []
        self.var_inc = 1.0
        self.cla_inc = 1.0
        self.ok = True
        self.model: List[bool] = []
        self.core: List[int] = []
        self.stats = SolverStats()
        self.max_learnts = 4000.0
        self._simplify_mark = 0

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable and return its index."""
        v = self.n_vars
        self.n_vars += 1
        self.watches.append([])
        self.watches.append([])
        self.assigns.append(UNDEF)
        self.level.append(0)
        self.reason.append(None)
        self.polarity.append(True)
        self.activity.append(0.0)
        self.seen.append(0)
        self.order.grow_to(self.n_vars)
        self.order.insert(v)
        return v

    def new_vars(self, count: int) -> List[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_var() for _ in range(count)]

    def value(self, lit: int) -> int:
        """Current truth value of ``lit``: TRUE, FALSE or UNDEF."""
        v = self.assigns[lit >> 1]
        if v < 0:
            return UNDEF
        return v ^ (lit & 1)

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a clause; returns ``False`` if the formula became trivially UNSAT.

        Must be called at decision level 0 (i.e. between :meth:`solve` calls).
        Duplicate literals are removed, tautologies are dropped, and literals
        already false at level 0 are stripped.
        """
        if not self.ok:
            return False
        assert not self.trail_lim, "clauses may only be added at level 0"
        out: List[int] = []
        seen_here = set()
        for lit in sorted(lits):
            if lit in seen_here:
                continue
            if (lit ^ 1) in seen_here:
                return True  # tautology
            val = self.value(lit)
            if val == TRUE:
                return True  # already satisfied at level 0
            if val == FALSE:
                continue  # falsified at level 0; drop literal
            seen_here.add(lit)
            out.append(lit)
        if self.proof is not None and sorted(out) != sorted(set(lits)):
            self.proof.append(("a", tuple(out)))
        if not out:
            self.ok = False
            return False
        if len(out) == 1:
            self._unchecked_enqueue(out[0], None)
            self.ok = self._propagate() is None
            if not self.ok and self.proof is not None:
                self.proof.append(("a", ()))
            return self.ok
        clause = Clause(out)
        self.clauses.append(clause)
        self._attach(clause)
        return True

    def add_clauses(self, clause_list: Iterable[Sequence[int]]) -> bool:
        ok = True
        for lits in clause_list:
            ok = self.add_clause(lits) and ok
        return ok

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------

    def _attach(self, clause: Clause) -> None:
        self.watches[clause[0] ^ 1].append(clause)
        self.watches[clause[1] ^ 1].append(clause)

    def _detach(self, clause: Clause) -> None:
        self.watches[clause[0] ^ 1].remove(clause)
        self.watches[clause[1] ^ 1].remove(clause)

    def _unchecked_enqueue(self, lit: int, reason: Optional[Clause]) -> None:
        var = lit >> 1
        self.assigns[var] = (lit & 1) ^ 1
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)

    def _propagate(self) -> Optional[Clause]:
        """Unit propagation; returns a conflicting clause or ``None``."""
        watches = self.watches
        assigns = self.assigns
        confl: Optional[Clause] = None
        while self.qhead < len(self.trail):
            p = self.trail[self.qhead]
            self.qhead += 1
            self.stats.propagations += 1
            false_lit = p ^ 1
            ws = watches[p]
            i = j = 0
            n = len(ws)
            while i < n:
                clause = ws[i]
                i += 1
                # Ensure the false literal is at position 1.
                if clause[0] == false_lit:
                    clause[0] = clause[1]
                    clause[1] = false_lit
                first = clause[0]
                v = assigns[first >> 1]
                if v >= 0 and (v ^ (first & 1)) == TRUE:
                    ws[j] = clause
                    j += 1
                    continue
                # Look for a new literal to watch.
                found = False
                for k in range(2, len(clause)):
                    lk = clause[k]
                    vk = assigns[lk >> 1]
                    if vk < 0 or (vk ^ (lk & 1)) != FALSE:
                        clause[1] = lk
                        clause[k] = false_lit
                        watches[lk ^ 1].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                ws[j] = clause
                j += 1
                if v >= 0:  # first is FALSE -> conflict
                    confl = clause
                    self.qhead = len(self.trail)
                    while i < n:
                        ws[j] = ws[i]
                        j += 1
                        i += 1
                    break
                self._unchecked_enqueue(first, clause)
            del ws[j:]
            if confl is not None:
                break
        return confl

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _new_decision_level(self) -> None:
        self.trail_lim.append(len(self.trail))

    def _cancel_until(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        bound = self.trail_lim[target_level]
        trail = self.trail
        for idx in range(len(trail) - 1, bound - 1, -1):
            lit = trail[idx]
            var = lit >> 1
            self.assigns[var] = UNDEF
            self.polarity[var] = bool(lit & 1)
            self.reason[var] = None
            if not self.order.in_heap(var):
                self.order.insert(var)
        del trail[bound:]
        del self.trail_lim[target_level:]
        self.qhead = len(trail)

    def _var_bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > self.RESCALE_LIMIT:
            inv = 1.0 / self.RESCALE_LIMIT
            for i in range(self.n_vars):
                self.activity[i] *= inv
            self.var_inc *= inv
        self.order.decrease(var)

    def _cla_bump(self, clause: Clause) -> None:
        clause.act += self.cla_inc
        if clause.act > self.RESCALE_LIMIT:
            inv = 1.0 / self.RESCALE_LIMIT
            for c in self.learnts:
                c.act *= inv
            self.cla_inc *= inv

    def _analyze(self, confl: Clause) -> tuple:
        """First-UIP conflict analysis.

        Returns ``(learnt_clause_lits, backtrack_level, lbd)``.
        """
        seen = self.seen
        level = self.level
        trail = self.trail
        learnt: List[int] = [0]  # placeholder for the asserting literal
        to_clear: List[int] = []
        counter = 0
        p = -1
        index = len(trail) - 1
        cur_level = self._decision_level()
        clause: Optional[Clause] = confl
        while True:
            assert clause is not None
            if clause.learnt:
                self._cla_bump(clause)
            start = 1 if p >= 0 else 0
            for k in range(start, len(clause)):
                q = clause[k]
                var = q >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    to_clear.append(var)
                    self._var_bump(var)
                    if level[var] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            clause = self.reason[p >> 1]
            index -= 1
            counter -= 1
            if counter <= 0:
                break
            # Move p to front of its reason for the skip-first convention.
            if clause is not None and clause[0] != (p):
                # reason clause always has its implied literal first
                pass
        learnt[0] = p ^ 1

        # Conflict-clause minimisation: drop literals implied by the rest.
        kept = [learnt[0]]
        for q in learnt[1:]:
            r = self.reason[q >> 1]
            if r is None:
                kept.append(q)
                continue
            redundant = True
            for x in r:
                if x == (q ^ 1):
                    continue
                xv = x >> 1
                if not seen[xv] and level[xv] > 0:
                    redundant = False
                    break
            if not redundant:
                kept.append(q)
        learnt = kept

        # Compute backtrack level and LBD.
        if len(learnt) == 1:
            bt_level = 0
        else:
            max_i = 1
            for i in range(2, len(learnt)):
                if level[learnt[i] >> 1] > level[learnt[max_i] >> 1]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt_level = level[learnt[1] >> 1]
        lbd_levels = {level[q >> 1] for q in learnt}
        for var in to_clear:
            seen[var] = 0
        return learnt, bt_level, len(lbd_levels)

    def _analyze_final(self, p: int) -> None:
        """Compute the failed-assumption core.

        ``p`` is an assumption literal found FALSE under the other
        assumptions.  Afterwards :attr:`core` contains a subset of the
        assumption literals sufficient for unsatisfiability (including ``p``).
        """
        self.core = [p]
        if self._decision_level() == 0:
            return
        seen = self.seen
        seen[p >> 1] = 1
        for idx in range(len(self.trail) - 1, self.trail_lim[0] - 1, -1):
            lit = self.trail[idx]
            var = lit >> 1
            if not seen[var]:
                continue
            r = self.reason[var]
            if r is None:
                # A decision inside the assumption prefix is an assumption.
                if lit != p:
                    self.core.append(lit)
            else:
                for x in r[1:]:
                    if self.level[x >> 1] > 0:
                        seen[x >> 1] = 1
            seen[var] = 0
        seen[p >> 1] = 0

    def _reduce_db(self) -> None:
        """Throw away half of the learnt clauses, worst (LBD, activity) first."""
        self.learnts.sort(key=lambda c: (-c.lbd, c.act))
        keep_from = len(self.learnts) // 2
        kept: List[Clause] = []
        for i, clause in enumerate(self.learnts):
            locked = (
                self.reason[clause[0] >> 1] is clause
                and self.value(clause[0]) == TRUE
            )
            if i >= keep_from or locked or clause.lbd <= 2 or len(clause) == 2:
                kept.append(clause)
            else:
                self._detach(clause)
                self.stats.removed_clauses += 1
                if self.proof is not None:
                    self.proof.append(("d", tuple(clause)))
        self.learnts = kept

    def _pick_branch_lit(self) -> int:
        order = self.order
        assigns = self.assigns
        while len(order):
            var = order.pop()
            if assigns[var] == UNDEF:
                return 2 * var + (1 if self.polarity[var] else 0)
        return -1

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> SatResult:
        """Solve the current formula under ``assumptions``.

        Returns a :class:`SatResult` (``UNKNOWN`` when a budget was
        exhausted or the tracer cancelled).  On ``SAT`` the satisfying
        assignment is in :attr:`model`; on ``UNSAT`` under assumptions,
        :attr:`core` holds a subset of failed assumptions.
        """
        self.stats.solve_calls += 1
        self.model = []
        self.core = []
        tracer = self.tracer
        before = self.stats.snapshot() if tracer is not None else None
        started = time.monotonic()
        if not self.ok:
            return self._finish(SatResult.UNSAT, before, started)
        deadline = started + time_budget if time_budget else None
        conflict_limit = (
            self.stats.conflicts + conflict_budget if conflict_budget else None
        )
        assumptions = list(assumptions)
        restart_num = 0
        restart_budget = luby(2.0, restart_num) * self.RESTART_BASE
        conflicts_this_restart = 0
        if self.max_learnts < len(self.clauses) / 3:
            self.max_learnts = len(self.clauses) / 3

        status: Optional[bool] = None
        while status is None:
            confl = self._propagate()
            if confl is not None:
                self.stats.conflicts += 1
                conflicts_this_restart += 1
                if self._decision_level() == 0:
                    self.ok = False
                    status = False
                    if self.proof is not None:
                        self.proof.append(("a", ()))
                    break
                learnt, bt_level, lbd = self._analyze(confl)
                if self.proof is not None:
                    self.proof.append(("a", tuple(learnt)))
                # Never undo the assumption prefix permanently: backtracking
                # below it is fine, the assumption loop re-establishes it.
                self._cancel_until(bt_level)
                if len(learnt) == 1:
                    self._unchecked_enqueue(learnt[0], None)
                else:
                    clause = Clause(learnt, learnt=True)
                    clause.lbd = lbd
                    self.learnts.append(clause)
                    self._attach(clause)
                    self._cla_bump(clause)
                    self._unchecked_enqueue(learnt[0], clause)
                self.stats.lbd_counts[lbd] = self.stats.lbd_counts.get(lbd, 0) + 1
                self.stats.learnt_literals += len(learnt)
                self.var_inc *= self.VAR_DECAY
                self.cla_inc *= self.CLA_DECAY
                continue

            # No conflict.
            if conflict_limit is not None and self.stats.conflicts >= conflict_limit:
                break
            if deadline is not None and time.monotonic() > deadline:
                break
            if conflicts_this_restart >= restart_budget:
                restart_num += 1
                self.stats.restarts += 1
                restart_budget = luby(2.0, restart_num) * self.RESTART_BASE
                conflicts_this_restart = 0
                self._cancel_until(0)
                if self.tracer is not None:
                    # Restarts are the solver's safe points: surface progress
                    # and poll the cooperative-cancellation flag so a long
                    # solve can be aborted between restarts.
                    self.tracer.event(
                        "solver.restart",
                        restarts=self.stats.restarts,
                        conflicts=self.stats.conflicts,
                        learnts=len(self.learnts),
                    )
                    if self.tracer.cancelled:
                        break
                continue
            if (
                len(self.learnts) - len(self.trail) >= self.max_learnts
                and self._decision_level() > 0
            ):
                self._reduce_db()
                self.max_learnts *= 1.2

            # Establish assumptions, then decide.
            next_lit = -1
            while self._decision_level() < len(assumptions):
                p = assumptions[self._decision_level()]
                val = self.value(p)
                if val == TRUE:
                    self._new_decision_level()  # dummy level
                elif val == FALSE:
                    self._analyze_final(p)
                    status = False
                    break
                else:
                    next_lit = p
                    break
            if status is not None:
                break
            if next_lit == -1:
                next_lit = self._pick_branch_lit()
                if next_lit == -1:
                    status = True  # all variables assigned
                    break
                self.stats.decisions += 1
            self._new_decision_level()
            self._unchecked_enqueue(next_lit, None)

        if status is True:
            self.model = [self.assigns[v] == TRUE for v in range(self.n_vars)]
        self._cancel_until(0)
        return self._finish(SatResult.from_bool(status), before, started)

    def _finish(
        self, result: SatResult, before: Optional[dict], started: float
    ) -> SatResult:
        """Emit the per-solve stats snapshot (when a tracer is attached)."""
        if self.tracer is not None:
            after = self.stats.snapshot()
            attrs = {"result": result.value, "time": time.monotonic() - started}
            # Per-call deltas tell the optimization loop where each
            # iteration's effort went; cumulative values mirror as_dict().
            for key, value in after.items():
                attrs[key] = value
                if before is not None:
                    attrs["d_" + key] = value - before[key]
            attrs["n_vars"] = self.n_vars
            attrs["n_clauses"] = len(self.clauses)
            attrs["n_learnts"] = len(self.learnts)
            attrs["lbd_counts"] = {
                str(k): v for k, v in sorted(self.stats.lbd_counts.items())
            }
            self.tracer.event("solver.solve", **attrs)
        return result

    # ------------------------------------------------------------------
    # Search guidance
    # ------------------------------------------------------------------

    def warm_start(self, hints) -> None:
        """Seed the phase-saving polarities from a (partial) assignment.

        ``hints`` maps variable index -> bool (or is a sequence of bools).
        The next search will try those values first, which lets callers
        guide the solver with an application-level solution — e.g. reusing
        the previous optimization iteration's model, or a heuristic
        synthesizer's mapping (the paper's Sec. V future-work direction).
        Hints never affect soundness: they only flip decision polarities.
        """
        items = hints.items() if hasattr(hints, "items") else enumerate(hints)
        for var, value in items:
            if not 0 <= var < self.n_vars:
                raise ValueError(f"hint for unknown variable {var}")
            self.polarity[var] = not bool(value)

    def bump_variables(self, variables, amount: float = 1.0) -> None:
        """Raise VSIDS activity of ``variables`` so they are decided early.

        The application-specific variable-ordering hook from the paper's
        future-work list: branching first on, say, mapping variables of the
        busiest qubits measurably changes search behaviour.
        """
        for var in variables:
            if not 0 <= var < self.n_vars:
                raise ValueError(f"cannot bump unknown variable {var}")
            self.activity[var] += amount * self.var_inc
            if self.activity[var] > self.RESCALE_LIMIT:
                inv = 1.0 / self.RESCALE_LIMIT
                for i in range(self.n_vars):
                    self.activity[i] *= inv
                self.var_inc *= inv
            self.order.decrease(var)

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------

    def model_value(self, lit: int) -> bool:
        """Truth value of ``lit`` in the most recent satisfying model."""
        if not self.model:
            raise RuntimeError("no model available; call solve() first")
        return self.model[lit >> 1] ^ bool(lit & 1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    @property
    def num_learnts(self) -> int:
        return len(self.learnts)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Solver(vars={self.n_vars}, clauses={len(self.clauses)}, "
            f"learnts={len(self.learnts)}, ok={self.ok})"
        )
