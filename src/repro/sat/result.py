"""The solver verdict type.

Historically :meth:`repro.sat.Solver.solve` returned the tri-state
``True`` / ``False`` / ``None``, which made call sites easy to get subtly
wrong (``if status:`` silently conflating UNSAT with timeout).
:class:`SatResult` names the three outcomes while staying drop-in
compatible with truthiness-style code:

* ``bool(result)`` is ``True`` exactly for :attr:`SatResult.SAT`,
* ``result == True`` / ``== False`` / ``== None`` match ``SAT`` /
  ``UNSAT`` / ``UNKNOWN`` respectively (equality, not identity — code
  using ``is True`` must migrate to ``is SatResult.SAT``).
"""

from __future__ import annotations

from enum import Enum
from typing import Optional


class SatResult(Enum):
    """Outcome of a SAT query: satisfiable, unsatisfiable, or undecided
    (conflict/time budget exhausted, or cancelled)."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        return self is SatResult.SAT

    def __eq__(self, other) -> bool:
        if isinstance(other, SatResult):
            return self is other
        if other is None:
            return self is SatResult.UNKNOWN
        if other is True:
            return self is SatResult.SAT
        if other is False:
            return self is SatResult.UNSAT
        return NotImplemented

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    __hash__ = Enum.__hash__

    @classmethod
    def from_bool(cls, status: Optional[bool]) -> "SatResult":
        """Lift the legacy tri-state into the enum (idempotent)."""
        if isinstance(status, SatResult):
            return status
        if status is True:
            return cls.SAT
        if status is False:
            return cls.UNSAT
        if status is None:
            return cls.UNKNOWN
        raise TypeError(f"not a solver status: {status!r}")

    def to_bool(self) -> Optional[bool]:
        """Project back onto the legacy tri-state."""
        if self is SatResult.SAT:
            return True
        if self is SatResult.UNSAT:
            return False
        return None

    def __str__(self) -> str:
        return self.value
