"""From-scratch SAT substrate: CDCL solver, CNF container, DIMACS I/O.

This package replaces the Z3 SAT engine used by the original OLSQ2 paper
(see DESIGN.md, substitution table).
"""

from .formula import CNF
from .inprocess import Inprocessor
from .preprocess import (
    ModelReconstructor,
    Unsatisfiable,
    preprocess,
    preprocess_stats,
)
from .proof import (
    ProofError,
    RupChecker,
    check_unsat_proof,
    check_unsat_proof_slow,
    is_rup,
    proof_stats,
)
from .reference import brute_force_solve, count_models
from .result import SatResult
from .sharing import (
    ShareClient,
    ShareEndpoint,
    ShareRelay,
    SharedClauseRing,
    ShmShareEndpoint,
    clause_signature,
    key_hash,
)
from .snapshot import (
    SnapshotUnsupported,
    TemplateStore,
    restore_solver,
    snapshot_solver,
)
from .solver import Clause, Solver, SolverStats, luby
from .types import (
    FALSE,
    TRUE,
    UNDEF,
    dimacs_to_lit,
    lit_sign,
    lit_to_dimacs,
    lit_var,
    mk_lit,
    neg,
)

__all__ = [
    "CNF",
    "Clause",
    "Inprocessor",
    "ModelReconstructor",
    "Unsatisfiable",
    "preprocess",
    "preprocess_stats",
    "ProofError",
    "RupChecker",
    "check_unsat_proof",
    "check_unsat_proof_slow",
    "is_rup",
    "proof_stats",
    "SatResult",
    "ShareClient",
    "ShareEndpoint",
    "ShareRelay",
    "SharedClauseRing",
    "ShmShareEndpoint",
    "clause_signature",
    "key_hash",
    "SnapshotUnsupported",
    "TemplateStore",
    "restore_solver",
    "snapshot_solver",
    "Solver",
    "SolverStats",
    "luby",
    "brute_force_solve",
    "count_models",
    "TRUE",
    "FALSE",
    "UNDEF",
    "mk_lit",
    "neg",
    "lit_var",
    "lit_sign",
    "lit_to_dimacs",
    "dimacs_to_lit",
]
