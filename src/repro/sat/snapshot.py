"""Encoded-state snapshots: serialize a post-encode solver, restore clones.

Pure-Python encoding dominates synthesis wall time now that propagation
runs in the compiled kernel (see PERFORMANCE.md).  Workers and repeated
requests over the *same* instance shape used to pay that cost once each;
a snapshot pays it once total:

* :func:`snapshot_solver` serializes a solver sitting at a level-0 safe
  point — the formula (arena buffers), all per-variable search state,
  watch lists (including the kernel-owned n-ary lists), the VSIDS heap,
  and counters — into opaque bytes.
* :func:`restore_solver` builds a fresh :class:`~repro.sat.solver.Solver`
  (any backend) whose observable state is byte-for-byte identical to the
  snapshot source: same trail, same watch order, same heap layout, same
  stats (wall-clock slots excepted — a clone did not spend the source's
  seconds).  Tests in ``tests/test_snapshot.py`` enforce this
  differentially against a freshly encoded solver under both kernels.
* :class:`TemplateStore` is the keyed cache the synthesizers and the
  service consult (``config.template_store``) so a known instance shape
  skips Python encoding entirely.

Everything is stored as plain Python scalars/lists, so a snapshot taken
from a native-kernel solver restores into a pure-Python one and vice
versa.  Snapshots refuse proof-logging solvers (the proof list is an
append-only derivation history that must start at the clause additions;
cloning mid-history would forge it) and anything not at decision level 0.
"""

from __future__ import annotations

import pickle
import threading
from typing import Any, Dict, Optional, Tuple

from .solver import Solver, SolverStats

#: Bump when the blob layout changes; restore rejects other versions.
SNAPSHOT_FORMAT = 1


class SnapshotUnsupported(RuntimeError):
    """The solver's current state cannot be snapshot (see message)."""


def _nary_lists(solver: Solver) -> list:
    """The n-ary watch lists as plain lists, whichever side owns them."""
    if solver._kern is not None:
        return [solver._kernel_list(2, lit) for lit in range(2 * solver.n_vars)]
    return [list(w) for w in solver.watches]


def snapshot_solver(solver: Solver) -> bytes:
    """Serialize ``solver``'s complete search state to bytes.

    The solver must be at decision level 0 with no staged bulk clauses and
    no active replay, and must not be proof logging.  The snapshot is a
    value copy: taking it does not perturb the solver.
    """
    if solver.proof is not None:
        raise SnapshotUnsupported(
            "cannot snapshot a proof-logging solver: the proof is an "
            "append-only derivation history anchored at the original "
            "clause additions"
        )
    if solver.trail_lim:
        raise SnapshotUnsupported("snapshot only at decision level 0")
    if solver._bulk_staged is not None:
        raise SnapshotUnsupported("cannot snapshot inside bulk staging")
    if solver._replay_cursor is not None:
        raise SnapshotUnsupported("cannot snapshot during encode replay")
    arena = solver.arena
    recon = solver._recon
    inproc = solver.inprocessor
    state: Dict[str, Any] = {
        "format": SNAPSHOT_FORMAT,
        "n_vars": solver.n_vars,
        # -- formula storage -------------------------------------------
        "arena": {
            "lits": list(arena.lits),
            "start": list(arena.start),
            "size": list(arena.size),
            "learnt": list(arena.learnt),
            "lbd": list(arena.lbd),
            "spos": list(arena.spos),
            "act": list(arena.act),
            "tier": list(arena.tier),
            "touch": list(arena.touch),
            "wasted": arena.wasted,
            "n_live": arena.n_live,
            "pending_free": list(arena._pending_free),
            "free": list(arena._free),
        },
        "clauses": list(solver.clauses),
        "learnts_core": list(solver.learnts_core),
        "learnts_tier2": list(solver.learnts_tier2),
        "learnts_local": list(solver.learnts_local),
        # -- watches (bin/ter are Python-authoritative; n-ary live on
        #    whichever side owns them in this backend) -------------------
        "watches_bin": [list(w) for w in solver.watches_bin],
        "watches_ter": [list(w) for w in solver.watches_ter],
        "watches_nary": _nary_lists(solver),
        # -- per-variable search state ----------------------------------
        "assigns_lit": list(solver.assigns_lit),
        "level": list(solver.level),
        "reason": list(solver.reason),
        "polarity": list(solver.polarity),
        "activity": list(solver.activity),
        "seen": list(solver.seen),
        "trail": list(solver.trail),
        "trail_size": solver.trail_size,
        "qhead": solver.qhead,
        "heap": list(solver.order.heap),
        "heap_indices": list(solver.order.indices),
        "heap_n": solver.order.n,
        # -- scalars ------------------------------------------------------
        "var_inc": solver.var_inc,
        "cla_inc": solver.cla_inc,
        "ok": solver.ok,
        "max_learnts": solver.max_learnts,
        "model": list(solver.model),
        "core": list(solver.core),
        "inprocessing": solver.inprocessing,
        "next_inprocess": solver._next_inprocess,
        "last_inprocess": solver._last_inprocess,
        "last_reduce_conflicts": solver._last_reduce_conflicts,
        "inproc_cursors": (
            (inproc._probe_cursor, inproc._vivify_cursor)
            if inproc is not None
            else None
        ),
        # -- simplification bookkeeping ----------------------------------
        "thawed": sorted(solver._thawed),
        "eliminated": sorted(solver._eliminated),
        "recon": (
            {"stack": list(recon._stack), "fixed": dict(recon.fixed)}
            if recon is not None
            else None
        ),
        # -- stats (lbd_counts included; wall clocks are zeroed on
        #    restore — a clone did not spend the source's seconds) --------
        "stats": {
            name: getattr(solver.stats, name)
            for name in SolverStats.__slots__
            if name != "kernel"
        },
    }
    return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)


def restore_solver(
    blob: bytes,
    kernel: Optional[str] = None,
    sanitize: Optional[str] = None,
) -> Solver:
    """Build a fresh solver from :func:`snapshot_solver` bytes.

    ``kernel`` picks the backend of the clone (default "auto"); a snapshot
    taken under either backend restores into either.  The clone starts
    with no tracer, no share client, and zeroed wall-clock stats; callers
    re-attach what they need.  All kernel binding generations start stale
    (``_k_nvars``/``_k_aver`` are fresh-constructed at -1) and are synced
    exactly once, after every buffer has reached its final address.
    """
    state = pickle.loads(blob)
    if state.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotUnsupported(
            f"snapshot format {state.get('format')!r} != {SNAPSHOT_FORMAT}"
        )
    s = Solver(kernel=kernel, sanitize=sanitize)
    n_vars = state["n_vars"]
    s.n_vars = n_vars

    # Formula storage.  Buffers are extended in place (never replaced):
    # the VSIDS heap holds a reference to ``s.activity`` and the typed
    # containers must be the ones the kernel will bind.
    arena = s.arena
    a = state["arena"]
    arena.lits.extend(a["lits"])
    arena.start.extend(a["start"])
    arena.size.extend(a["size"])
    arena.learnt.extend(a["learnt"])
    arena.lbd.extend(a["lbd"])
    arena.spos.extend(a["spos"])
    arena.act.extend(a["act"])
    arena.tier.extend(a["tier"])
    arena.touch.extend(a["touch"])
    arena.wasted = a["wasted"]
    arena.n_live = a["n_live"]
    arena._pending_free.extend(a["pending_free"])
    arena._free.extend(a["free"])
    arena.version += 1

    s.clauses.extend(state["clauses"])
    s.learnts_core.extend(state["learnts_core"])
    s.learnts_tier2.extend(state["learnts_tier2"])
    s.learnts_local.extend(state["learnts_local"])

    # Per-variable search state.
    s.assigns_lit.extend(state["assigns_lit"])
    s.level.extend(state["level"])
    s.reason.extend(state["reason"])
    s.polarity.extend(state["polarity"])
    s.activity.extend(state["activity"])
    s.seen.extend(state["seen"])
    s.trail.extend(state["trail"])
    s.trail_size = state["trail_size"]
    s.qhead = state["qhead"]
    s.order.heap.extend(state["heap"])
    s.order.indices.extend(state["heap_indices"])
    s.order.n = state["heap_n"]

    # Watch lists.  bin/ter Python mirrors are authoritative in both
    # backends; the n-ary lists go to whichever side owns them here.
    s.watches_bin = [list(w) for w in state["watches_bin"]]
    s.watches_ter = [list(w) for w in state["watches_ter"]]
    if s._kern is not None:
        s.watches = [[] for _ in range(2 * n_vars)]
    else:
        s.watches = [list(w) for w in state["watches_nary"]]

    # Scalars and bookkeeping.
    s.var_inc = state["var_inc"]
    s.cla_inc = state["cla_inc"]
    s.ok = state["ok"]
    s.max_learnts = state["max_learnts"]
    s.model = list(state["model"])
    s.core = list(state["core"])
    s.inprocessing = state["inprocessing"]
    s._next_inprocess = state["next_inprocess"]
    s._last_inprocess = state["last_inprocess"]
    s._last_reduce_conflicts = state["last_reduce_conflicts"]
    if state["inproc_cursors"] is not None:
        inproc = s._get_inprocessor()
        inproc._probe_cursor, inproc._vivify_cursor = state["inproc_cursors"]
    s._thawed = set(state["thawed"])
    s._eliminated = set(state["eliminated"])
    if state["recon"] is not None:
        from .preprocess import ModelReconstructor

        recon = ModelReconstructor()
        recon._stack = [
            (var, [list(c) for c in clauses])
            for var, clauses in state["recon"]["stack"]
        ]
        recon.fixed = dict(state["recon"]["fixed"])
        s._recon = recon

    stats = state["stats"]
    for name, value in stats.items():
        if name == "lbd_counts":
            s.stats.lbd_counts = dict(value)
        elif name in SolverStats.WALL_CLOCK:
            setattr(s.stats, name, 0.0)
        else:
            setattr(s.stats, name, value)
    s.stats.kernel = s.kernel

    if s._kern is not None:
        # Every buffer is at its final address now: bind the kernel views
        # once (both generation markers were constructed stale), then load
        # the C-side watch lists verbatim.
        s._k_sync()
        ffi, lib = s._k_ffi, s._k_lib
        for which, lists in (
            (0, state["watches_bin"]),
            (1, state["watches_ter"]),
            (2, state["watches_nary"]),
        ):
            for lit, data in enumerate(lists):
                if data:
                    lib.k_load_list(
                        s._kern, which, lit, ffi.new("int32_t[]", data), len(data)
                    )
    return s


class TemplateStore:
    """Keyed cache of encoded-state snapshots (``config.template_store``).

    Maps an opaque hashable key — see ``repro.core.templates.template_key``
    — to snapshot bytes.  Bounded LRU; thread-safe (the service event loop
    and worker dispatch touch one store concurrently).  ``hits``/``misses``
    count :meth:`get` outcomes so benches and the service can prove a
    template hit dispatched zero encode work.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError("template store needs at least one entry")
        self.max_entries = max_entries
        self._entries: Dict[Any, bytes] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Any) -> Optional[bytes]:
        with self._lock:
            blob = self._entries.get(key)
            if blob is None:
                self.misses += 1
                return None
            # LRU touch: move to the back of the insertion order.
            del self._entries[key]
            self._entries[key] = blob
            self.hits += 1
            return blob

    def put(self, key: Any, blob: bytes) -> None:
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            elif len(self._entries) >= self.max_entries:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
            self._entries[key] = blob

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }
