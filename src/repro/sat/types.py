"""Literal and truth-value conventions shared across the SAT substrate.

Variables are non-negative integers ``0..n-1``.  A *literal* packs a variable
and a sign into one integer: ``lit = 2 * var`` for the positive literal and
``lit = 2 * var + 1`` for the negative literal.  This is the classic MiniSat
convention; negation is a single XOR and literals index watch lists directly.

Truth values are plain integers: ``TRUE = 1``, ``FALSE = 0`` and
``UNDEF = -1``.  Evaluating a literal against a variable assignment is then
``value ^ sign`` (with the undefined case handled separately).
"""

from __future__ import annotations

TRUE = 1
FALSE = 0
UNDEF = -1


def mk_lit(var: int, negative: bool = False) -> int:
    """Build a literal from a variable index and a sign.

    >>> mk_lit(3)
    6
    >>> mk_lit(3, negative=True)
    7
    """
    return 2 * var + (1 if negative else 0)


def neg(lit: int) -> int:
    """Return the negation of ``lit``."""
    return lit ^ 1


def lit_var(lit: int) -> int:
    """Return the variable underlying ``lit``."""
    return lit >> 1


def lit_sign(lit: int) -> bool:
    """Return ``True`` iff ``lit`` is a negative literal."""
    return bool(lit & 1)


def lit_to_dimacs(lit: int) -> int:
    """Convert a packed literal to the signed DIMACS convention (1-based)."""
    var = (lit >> 1) + 1
    return -var if lit & 1 else var


def dimacs_to_lit(ilit: int) -> int:
    """Convert a signed DIMACS literal (1-based, non-zero) to packed form."""
    if ilit == 0:
        raise ValueError("DIMACS literal must be non-zero")
    var = abs(ilit) - 1
    return 2 * var + (1 if ilit < 0 else 0)
