"""Independent checking of UNSAT proofs (RUP / DRAT-style).

When optimality matters — "the optimal depth is the minimal value that can
have a satisfiable assignment" (paper Sec. III-B) — the UNSAT answer at the
last bound is the load-bearing claim.  A solver bug that mislabels a
satisfiable bound as UNSAT would silently produce *sub-optimal* "optimal"
results.  Proof logging plus this checker closes that loop: every clause
the solver derives is validated by *reverse unit propagation* (RUP) against
the clauses available at that point, exactly as DRAT checkers validate
industrial SAT solvers.

Usage::

    solver = Solver(proof_log=True)
    cnf.to_solver(solver)
    assert solver.solve() is SatResult.UNSAT
    assert check_unsat_proof(cnf, solver.proof)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .formula import CNF
from .types import neg


class ProofError(ValueError):
    """Raised when a proof step fails its RUP check."""


def _unit_propagate_conflict(clauses: List[List[int]], assumed: Sequence[int]) -> bool:
    """Return True iff unit propagation from ``assumed`` hits a conflict."""
    assignment: Dict[int, bool] = {}
    for lit in assumed:
        var, val = lit >> 1, not (lit & 1)
        if var in assignment and assignment[var] != val:
            return True
        assignment[var] = val
    changed = True
    while changed:
        changed = False
        for clause in clauses:
            unassigned: Optional[int] = None
            n_unassigned = 0
            satisfied = False
            for lit in clause:
                var = lit >> 1
                if var not in assignment:
                    unassigned = lit
                    n_unassigned += 1
                    if n_unassigned > 1:
                        break
                elif assignment[var] ^ bool(lit & 1):
                    satisfied = True
                    break
            if satisfied or n_unassigned > 1:
                continue
            if n_unassigned == 0:
                return True  # falsified clause
            var, val = unassigned >> 1, not (unassigned & 1)
            if var in assignment:
                if assignment[var] != val:
                    return True
            else:
                assignment[var] = val
                changed = True
    return False


def is_rup(clauses: List[List[int]], candidate: Sequence[int]) -> bool:
    """Is ``candidate`` derivable by reverse unit propagation from ``clauses``?

    Negate every literal of the candidate, propagate; the candidate is RUP
    iff propagation refutes the negation.
    """
    return _unit_propagate_conflict(clauses, [neg(l) for l in candidate])


def check_unsat_proof(
    cnf: CNF,
    proof: Sequence[Tuple[str, Sequence[int]]],
    strict_deletions: bool = False,
) -> bool:
    """Replay a proof log against the original formula.

    Each ``("a", lits)`` step must be RUP with respect to the formula plus
    all previously added (and not deleted) clauses; a ``("a", ())`` step —
    the empty clause — completes the refutation.  ``("d", lits)`` steps
    remove a clause from the active set (with ``strict_deletions`` the
    clause must exist).

    Returns ``True`` if an empty clause is validly derived.  Raises
    :class:`ProofError` on an invalid step; returns ``False`` if the proof
    ends without reaching the empty clause.
    """
    db: List[List[int]] = [sorted(set(c)) for c in cnf.clauses]
    for step_idx, (op, lits) in enumerate(proof):
        lits = list(lits)
        if op == "d":
            key = sorted(lits)
            for i, clause in enumerate(db):
                if clause == key:
                    db.pop(i)
                    break
            else:
                if strict_deletions:
                    raise ProofError(f"step {step_idx}: deleting absent clause {lits}")
            continue
        if op != "a":
            raise ProofError(f"step {step_idx}: unknown op {op!r}")
        if not is_rup(db, lits):
            raise ProofError(f"step {step_idx}: clause {lits} is not RUP")
        if not lits:
            return True
        db.append(sorted(lits))
    return False


def proof_stats(proof: Sequence[Tuple[str, Sequence[int]]]) -> dict:
    """Summary counters for a proof log."""
    additions = sum(1 for op, _ in proof if op == "a")
    deletions = sum(1 for op, _ in proof if op == "d")
    literals = sum(len(lits) for op, lits in proof if op == "a")
    return {
        "steps": len(proof),
        "additions": additions,
        "deletions": deletions,
        "added_literals": literals,
    }
