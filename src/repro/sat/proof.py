"""Independent checking of UNSAT proofs (RUP / DRAT-style).

When optimality matters — "the optimal depth is the minimal value that can
have a satisfiable assignment" (paper Sec. III-B) — the UNSAT answer at the
last bound is the load-bearing claim.  A solver bug that mislabels a
satisfiable bound as UNSAT would silently produce *sub-optimal* "optimal"
results.  Proof logging plus this checker closes that loop: every clause
the solver derives is validated by *reverse unit propagation* (RUP) against
the clauses available at that point, exactly as DRAT checkers validate
industrial SAT solvers.

The checker propagates with two watched literals per clause and resolves
deletions through a hash index keyed by the sorted literal tuple, the same
structure DRAT-trim uses; the quadratic full-scan implementation it replaced
is retained as :func:`check_unsat_proof_slow`, both as an oracle for
differential tests and as the baseline for the proof-checker benchmark.

Incremental, assumption-conditioned solves (``extend_horizon`` plus the
persistent StepVar activation assumptions) do not end in an empty clause:
the solver instead logs the failed-assumption core as a final RUP step, and
the caller passes the assumption literals to :func:`check_unsat_proof` via
``assumptions=``, which then demands that asserting them propagates to a
conflict under the fully-replayed clause database.

Usage::

    solver = Solver(proof_log=True)
    cnf.to_solver(solver)
    assert solver.solve() is SatResult.UNSAT
    assert check_unsat_proof(cnf, solver.proof)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .formula import CNF
from .types import neg

ProofStep = Tuple[str, Sequence[int]]


class ProofError(ValueError):
    """Raised when a proof step fails its RUP check."""


# ---------------------------------------------------------------------------
# Reference implementation: naive full-scan unit propagation.
# ---------------------------------------------------------------------------


def _unit_propagate_conflict(clauses: List[List[int]], assumed: Sequence[int]) -> bool:
    """Return True iff unit propagation from ``assumed`` hits a conflict."""
    assignment: Dict[int, bool] = {}
    for lit in assumed:
        var, val = lit >> 1, not (lit & 1)
        if var in assignment and assignment[var] != val:
            return True
        assignment[var] = val
    changed = True
    while changed:
        changed = False
        for clause in clauses:
            unassigned: Optional[int] = None
            n_unassigned = 0
            satisfied = False
            for lit in clause:
                var = lit >> 1
                if var not in assignment:
                    unassigned = lit
                    n_unassigned += 1
                    if n_unassigned > 1:
                        break
                elif assignment[var] ^ bool(lit & 1):
                    satisfied = True
                    break
            if satisfied or n_unassigned > 1:
                continue
            if n_unassigned == 0:
                return True  # falsified clause
            assert unassigned is not None
            var, val = unassigned >> 1, not (unassigned & 1)
            if var in assignment:
                if assignment[var] != val:
                    return True
            else:
                assignment[var] = val
                changed = True
    return False


def is_rup(clauses: List[List[int]], candidate: Sequence[int]) -> bool:
    """Is ``candidate`` derivable by reverse unit propagation from ``clauses``?

    Negate every literal of the candidate, propagate; the candidate is RUP
    iff propagation refutes the negation.
    """
    return _unit_propagate_conflict(clauses, [neg(l) for l in candidate])


def check_unsat_proof_slow(
    cnf: CNF,
    proof: Sequence[ProofStep],
    strict_deletions: bool = False,
    assumptions: Sequence[int] = (),
) -> bool:
    """Reference checker: full-scan propagation, linear deletion lookup.

    O(|db|) per propagation pass and per deletion — kept as the trusted
    oracle for differential tests and as the benchmark baseline.  Semantics
    match :func:`check_unsat_proof`.
    """
    db: List[List[int]] = [sorted(set(c)) for c in cnf.clauses]
    for step_idx, (op, raw) in enumerate(proof):
        lits = list(raw)
        if op == "d":
            key = sorted(set(lits))
            for i, clause in enumerate(db):
                if clause == key:
                    db.pop(i)
                    break
            else:
                if strict_deletions:
                    raise ProofError(f"step {step_idx}: deleting absent clause {lits}")
            continue
        if op != "a":
            raise ProofError(f"step {step_idx}: unknown op {op!r}")
        if not is_rup(db, lits):
            raise ProofError(f"step {step_idx}: clause {lits} is not RUP")
        if not lits:
            return True
        db.append(sorted(set(lits)))
    if assumptions:
        return _unit_propagate_conflict(db, list(assumptions))
    return False


# ---------------------------------------------------------------------------
# Fast checker: two watched literals, hash-indexed deletion.
# ---------------------------------------------------------------------------


class RupChecker:
    """Incremental RUP checker over a mutable clause database.

    Clauses are stored once and watched on their first two literals; each
    RUP query assigns the negated candidate plus all current unit clauses,
    propagates along the watch lists, and undoes its trail afterwards.
    Watch positions persist between queries (any position is valid under
    the empty assignment), so repeated queries touch only the clauses that
    actually propagate — the property that makes DRAT-trim-style checking
    scale where a per-step database scan does not.

    Deletion is resolved through ``self.index``, a multiset mapping the
    sorted literal tuple to the live clause ids carrying it, so ``("d",
    lits)`` steps cost a dict lookup regardless of database size.
    """

    def __init__(self, n_vars: int) -> None:
        self.n_vars = 0
        # clause id -> literal list, or None once deleted.
        self.clauses: List[Optional[List[int]]] = []
        # literal -> ids of clauses watching it (lazily pruned).
        self.watches: List[List[int]] = []
        # sorted literal tuple -> live clause ids with that key (multiset).
        self.index: Dict[Tuple[int, ...], List[int]] = {}
        # (clause id, literal) for unit clauses; dead ids skipped when seeding.
        self.units: List[Tuple[int, int]] = []
        self.has_empty = False
        # per-literal assignment: truth[lit] == 1 iff lit is currently true.
        self.truth = bytearray()
        self.propagations = 0
        self._grow(n_vars)

    def _grow(self, n_vars: int) -> None:
        if n_vars <= self.n_vars:
            return
        extend_by = 2 * (n_vars - self.n_vars)
        self.truth.extend(bytes(extend_by))
        for _ in range(extend_by):
            self.watches.append([])
        self.n_vars = n_vars

    # -- database maintenance ------------------------------------------------

    def add_clause(self, lits: Sequence[int]) -> None:
        """Install a clause (duplicates removed; assumed already RUP-checked)."""
        key = tuple(sorted(set(lits)))
        if key:
            self._grow((key[-1] >> 1) + 1)
        cid = len(self.clauses)
        clause = list(key)
        self.clauses.append(clause)
        self.index.setdefault(key, []).append(cid)
        if not clause:
            self.has_empty = True
        elif len(clause) == 1:
            self.units.append((cid, clause[0]))
        else:
            self.watches[clause[0]].append(cid)
            self.watches[clause[1]].append(cid)

    def delete_clause(self, lits: Sequence[int]) -> bool:
        """Remove one instance of the clause; False if no live copy exists.

        The watch lists are pruned lazily: dead ids are dropped the next
        time propagation walks past them.
        """
        key = tuple(sorted(set(lits)))
        ids = self.index.get(key)
        if not ids:
            return False
        cid = ids.pop()
        if not ids:
            del self.index[key]
        self.clauses[cid] = None
        return True

    # -- propagation ---------------------------------------------------------

    def propagate_conflict(self, assumed: Iterable[int]) -> bool:
        """Assert ``assumed``, seed unit clauses, propagate; True iff conflict.

        The assignment is fully undone before returning, so the checker can
        serve any number of queries.
        """
        if self.has_empty:
            return True
        truth = self.truth
        clauses = self.clauses
        watches = self.watches
        trail: List[int] = []
        conflict = False

        def assert_lit(lit: int) -> bool:
            """Make ``lit`` true; False on conflict with the current trail."""
            if truth[lit]:
                return True
            if truth[lit ^ 1]:
                return False
            truth[lit] = 1
            trail.append(lit)
            return True

        for cid, lit in self.units:
            if clauses[cid] is None:
                continue
            if not assert_lit(lit):
                conflict = True
                break
        if not conflict:
            for lit in assumed:
                if not assert_lit(lit):
                    conflict = True
                    break

        head = 0
        while not conflict and head < len(trail):
            falsified = trail[head] ^ 1
            head += 1
            self.propagations += 1
            ws = watches[falsified]
            i = j = 0
            n = len(ws)
            while i < n:
                cid = ws[i]
                i += 1
                clause = clauses[cid]
                if clause is None:
                    continue  # lazily drop deleted clause's watcher
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                other = clause[0]
                if truth[other]:
                    ws[j] = cid
                    j += 1
                    continue
                for k in range(2, len(clause)):
                    lit = clause[k]
                    if not truth[lit ^ 1]:
                        clause[1], clause[k] = lit, falsified
                        watches[lit].append(cid)
                        break
                else:
                    ws[j] = cid
                    j += 1
                    if truth[other ^ 1]:
                        conflict = True
                        break
                    truth[other] = 1
                    trail.append(other)
            while i < n:  # conflict broke the scan: keep remaining watchers
                ws[j] = ws[i]
                j += 1
                i += 1
            del ws[j:]

        for lit in trail:
            truth[lit] = 0
        return conflict

    def is_rup(self, candidate: Sequence[int]) -> bool:
        """Is ``candidate`` derivable by reverse unit propagation?"""
        return self.propagate_conflict([neg(l) for l in candidate])


def check_unsat_proof(
    cnf: CNF,
    proof: Sequence[ProofStep],
    strict_deletions: bool = False,
    assumptions: Sequence[int] = (),
    stats: Optional[Dict[str, int]] = None,
) -> bool:
    """Replay a proof log against the original formula.

    Each ``("a", lits)`` step must be RUP with respect to the formula plus
    all previously added (and not deleted) clauses; a ``("a", ())`` step —
    the empty clause — completes the refutation.  ``("d", lits)`` steps
    remove a clause from the active set (with ``strict_deletions`` the
    clause must exist; otherwise absent deletions are counted in
    ``stats["ignored_deletions"]`` and skipped).

    ``assumptions`` certifies an assumption-conditioned UNSAT (the verdict
    the incremental optimiser relies on): if the replay ends without an
    empty clause, the assumption literals are asserted and propagation must
    refute them for the proof to be accepted.

    Returns ``True`` if the refutation is validly derived.  Raises
    :class:`ProofError` on an invalid step; returns ``False`` if the proof
    ends without refuting the formula (or the assumptions).

    When ``stats`` is a dict it is filled with replay counters: ``steps``,
    ``additions``, ``deletions``, ``ignored_deletions`` and
    ``propagations``.
    """
    checker = RupChecker(cnf.n_vars)
    for clause in cnf.clauses:
        checker.add_clause(clause)
    counters = {
        "steps": len(proof),
        "additions": 0,
        "deletions": 0,
        "ignored_deletions": 0,
        "propagations": 0,
    }
    if stats is not None:
        stats.update(counters)  # visible even when a step raises
        counters = stats
    verified = False
    try:
        for step_idx, (op, raw) in enumerate(proof):
            lits = list(raw)
            if op == "d":
                counters["deletions"] += 1
                if not checker.delete_clause(lits):
                    if strict_deletions:
                        raise ProofError(
                            f"step {step_idx}: deleting absent clause {lits}"
                        )
                    counters["ignored_deletions"] += 1
                continue
            if op != "a":
                raise ProofError(f"step {step_idx}: unknown op {op!r}")
            counters["additions"] += 1
            if not checker.is_rup(lits):
                raise ProofError(f"step {step_idx}: clause {lits} is not RUP")
            if not lits:
                verified = True
                break
            checker.add_clause(lits)
        else:
            if assumptions:
                # Terminal check for assumption-conditioned UNSAT: the
                # assumptions themselves must propagate to a conflict.
                verified = checker.propagate_conflict(list(assumptions))
    finally:
        counters["propagations"] = checker.propagations
    return verified


def proof_stats(proof: Sequence[ProofStep]) -> Dict[str, int]:
    """Summary counters for a proof log (no replay; see also the ``stats``
    parameter of :func:`check_unsat_proof` for replay-time counters such as
    ``ignored_deletions``)."""
    additions = sum(1 for op, _ in proof if op == "a")
    deletions = sum(1 for op, _ in proof if op == "d")
    literals = sum(len(lits) for op, lits in proof if op == "a")
    return {
        "steps": len(proof),
        "additions": additions,
        "deletions": deletions,
        "added_literals": literals,
    }
