"""Inprocessing: solver-side simplification at restart safe points.

One-shot preprocessing (:mod:`repro.sat.preprocess`) only ever sees the
input formula; modern CDCL solvers get their biggest wins from repeating
the same simplifications *during* search, where learnt clauses and
level-0 units expose far more redundancy.  This module implements that
engine for :class:`repro.sat.solver.Solver`:

* **top-level cleaning** — clauses satisfied by a level-0 unit are
  deleted, falsified literals are stripped;
* **clause vivification** — assert the negation of a clause's literals
  one by one; a propagation conflict or an implied literal proves a
  strictly shorter clause (Piette/Hamadi/Sais 2008);
* **failed-literal probing** over the binary implication graph, with
  **hyper-binary resolution** (binary shortcuts for non-binary
  implication chains) and **equivalent-literal substitution** (Tarjan
  SCCs of the binary graph; every literal of a cycle is rewritten to one
  representative);
* **subsumption / self-subsuming resolution**, reusing the Bloom-style
  clause signatures from :func:`repro.sat.preprocess._signature`;
* bounded **variable elimination** (startup only, thawed variables only).

Safety contract — the engine runs only at the solver's level-0 safe
points (the same points clause import uses: restarts with assumptions
undone), so everything it derives is an assumption-free consequence of
the formula:

* *incrementality*: strengthened clauses are logical consequences, so
  ``extend_horizon`` and clause sharing stay sound; elimination touches
  only explicitly thawed variables, never assumption literals, StepVar
  activation guards or the shared variable prefix;
* *proofs*: every strengthening emits the new clause as a RUP addition
  **before** deleting the old one (the old clause participates in the new
  one's unit-propagation check), so the solver's DRAT-style log stays
  certifiable by :class:`repro.sat.proof.RupChecker`;
* *equivalences*: the defining binary clauses of an equivalence class are
  kept, so substituted variables remain constrained and models stay valid
  for external references;
* *watchers*: binary/ternary clauses are detached eagerly (their
  scan-only watch lists cannot drop dead clauses lazily); n-ary clauses
  use the arena's O(1) lazy deletion.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set

from .preprocess import ModelReconstructor, _signature
from .solver import BIN_BASE, NO_CLAUSE, Solver


class Inprocessor:
    """Bounded inprocessing over a :class:`Solver`'s clause database.

    Constructed lazily by the solver on first use; holds only cursors so
    successive passes rotate through different probe roots and
    vivification candidates.
    """

    #: Maximum hyper-binary resolvents added per pass.
    HBR_MAX = 64
    #: Maximum problem clauses vivified per pass (learnts are bounded by
    #: the propagation budget alone).
    VIVIFY_IRR_MAX = 50
    #: Minimum size for an irredundant clause to be worth vivifying.
    VIVIFY_IRR_MIN_SIZE = 4
    #: Per-variable occurrence cap for bounded elimination.
    ELIM_MAX_OCC = 10

    def __init__(self, solver: Solver) -> None:
        self.solver = solver
        self._probe_cursor = 0
        self._vivify_cursor = 0
        self._saved_phases: Sequence[int] = []

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(
        self,
        *,
        subsume: bool = True,
        probe: bool = True,
        vivify: bool = True,
        eliminate: bool = False,
        budget: int = 20_000,
    ) -> None:
        """One bounded pass.  Must be called at decision level 0.

        ``budget`` caps the propagation work of the probing and
        vivification phases (subsumption is capped by an equivalent
        number of set-inclusion tests).
        """
        s = self.solver
        if not s.ok:
            return
        self._begin()
        self._clean_top_level()
        if s.ok and probe:
            self._probe(budget // 4)
        if s.ok and subsume:
            self._subsume(4 * budget)
        if s.ok and vivify:
            self._vivify(budget)
        if s.ok and eliminate:
            self._eliminate()
        self._finish()

    # ------------------------------------------------------------------
    # Pass scaffolding
    # ------------------------------------------------------------------

    def _begin(self) -> None:
        s = self.solver
        assert not s.trail_lim, "inprocessing requires decision level 0"
        # Level-0 reasons are never dereferenced by conflict analysis
        # (level > 0 guards), but they are *compared* against crefs by the
        # reduction's locked check.  Clearing them lets this pass free any
        # clause without leaving a dangling reason behind.
        reason = s.reason
        trail = s.trail
        for i in range(s.trail_size):
            reason[trail[i] >> 1] = NO_CLAUSE
        # Probing and vivification propagate and backtrack; without this
        # snapshot the cancellations would overwrite the saved phases of
        # every variable they touch and derail the subsequent search.
        # A slice copy keeps the container type (list or, under the native
        # kernel, array('b')) so _finish can slice-assign it back.
        self._saved_phases = s.polarity[:]

    def _finish(self) -> None:
        s = self.solver
        arena = s.arena
        asize = arena.size
        alearnt = arena.learnt
        s.clauses = [c for c in s.clauses if asize[c] >= 0]
        # Subsumption may promote a learnt subsumer to irredundant
        # (learnt flag cleared, cref moved into ``clauses``), so the tier
        # lists also filter on the flag.
        s.learnts_core = [c for c in s.learnts_core if asize[c] >= 0 and alearnt[c]]
        s.learnts_tier2 = [c for c in s.learnts_tier2 if asize[c] >= 0 and alearnt[c]]
        s.learnts_local = [c for c in s.learnts_local if asize[c] >= 0 and alearnt[c]]
        reason = s.reason
        trail = s.trail
        for i in range(s.trail_size):
            reason[trail[i] >> 1] = NO_CLAUSE
        # Restore the search's saved phases (see _begin).
        if len(self._saved_phases) == len(s.polarity):
            s.polarity[:] = self._saved_phases
        self._saved_phases = []
        if arena.needs_gc():
            s._garbage_collect()

    def _live_crefs(self) -> List[int]:
        s = self.solver
        asize = s.arena.size
        out = [c for c in s.clauses if asize[c] >= 0]
        for tier in (s.learnts_core, s.learnts_tier2, s.learnts_local):
            out.extend(c for c in tier if asize[c] >= 0)
        return out

    # ------------------------------------------------------------------
    # Shared primitives
    # ------------------------------------------------------------------

    def _delete(self, cref: int) -> None:
        """Delete a clause with a proof line and eager small-clause detach."""
        s = self.solver
        arena = s.arena
        if s.proof is not None:
            s.proof.append(("d", tuple(arena.literals(cref))))
        if arena.size[cref] <= 3:
            s._detach_small(cref)
        arena.free(cref)

    def _enqueue_unit(self, lit: int) -> None:
        """Assert a derived unit at level 0 (its add line is already logged)."""
        s = self.solver
        val = s.assigns_lit[lit]
        if val > 0:
            return
        if val == 0:
            # The unit contradicts an established level-0 assignment: the
            # empty clause follows by propagation over the logged units.
            s.ok = False
            if s.proof is not None:
                s.proof.append(("a", ()))
            return
        s._unchecked_enqueue(lit, NO_CLAUSE)
        if s._propagate() != NO_CLAUSE:
            s.ok = False
            if s.proof is not None:
                s.proof.append(("a", ()))

    def _replace(self, cref: int, new_lits: List[int]) -> Optional[int]:
        """Swap ``cref`` for a strictly stronger clause, proof-safely.

        Emits the RUP addition *before* the deletion so the old clause can
        justify the new one.  Returns the new cref, or ``None`` when the
        replacement collapsed to a unit / the empty clause.
        """
        s = self.solver
        arena = s.arena
        old = arena.literals(cref)
        learnt = bool(arena.learnt[cref])
        old_lbd = arena.lbd[cref]
        old_act = arena.act[cref]
        old_touch = arena.touch[cref]
        if s.proof is not None:
            s.proof.append(("a", tuple(new_lits)))
            s.proof.append(("d", tuple(old)))
        if arena.size[cref] <= 3:
            s._detach_small(cref)
        arena.free(cref)
        if not new_lits:
            s.ok = False  # the add line above was the empty clause
            return None
        if len(new_lits) == 1:
            self._enqueue_unit(new_lits[0])
            return None
        ncref = arena.alloc(new_lits, learnt=learnt, lbd=min(old_lbd, len(new_lits)))
        s._attach(ncref)
        if learnt:
            s._register_learnt(ncref, arena.lbd[ncref])
            arena.touch[ncref] = old_touch
        else:
            s.clauses.append(ncref)
        arena.act[ncref] = old_act
        return ncref

    # ------------------------------------------------------------------
    # Phase: top-level cleaning
    # ------------------------------------------------------------------

    def _clean_top_level(self) -> None:
        """Delete satisfied clauses, strip falsified literals (level 0)."""
        s = self.solver
        arena = s.arena
        astart = arena.start
        asize = arena.size
        alits = arena.lits
        assigns = s.assigns_lit
        proof = s.proof
        if proof is not None:
            # Deleting a clause satisfied at level 0 can delete the *reason*
            # of a root literal.  The solver keeps the literal on its trail,
            # but a checker honouring the deletion loses the derivation —
            # and learnt clauses omit root-falsified literals, so their RUP
            # checks silently depend on it.  Log every root unit (once, in
            # trail order, so each is RUP against the still-intact formula)
            # before any satisfied clause goes away.
            for idx in range(s._proof_root_logged, s.trail_size):
                proof.append(("a", (s.trail[idx],)))
            s._proof_root_logged = s.trail_size
        for cref in self._live_crefs():
            base = astart[cref]
            lits = alits[base : base + asize[cref]]
            satisfied = False
            n_false = 0
            for lit in lits:
                v = assigns[lit]
                if v > 0:
                    satisfied = True
                    break
                if v == 0:
                    n_false += 1
            if satisfied:
                self._delete(cref)
                continue
            if n_false:
                new = [lit for lit in lits if assigns[lit] < 0]
                s.stats.strengthened_clauses += 1
                self._replace(cref, new)
                if not s.ok:
                    return

    # ------------------------------------------------------------------
    # Phase: probing (equivalences, failed literals, hyper-binaries)
    # ------------------------------------------------------------------

    def _binary_sccs(self) -> List[List[int]]:
        """SCCs (size >= 2) of the binary implication graph, iteratively.

        Nodes are unassigned literals; ``watches_bin[p]`` lists exactly
        the literals implied by ``p`` through binary clauses.
        """
        s = self.solver
        wbin = s.watches_bin
        assigns = s.assigns_lit
        n = 2 * s.n_vars
        index = [0] * n
        low = [0] * n
        on_stack = bytearray(n)
        stack: List[int] = []
        sccs: List[List[int]] = []
        counter = 1
        for root in range(n):
            if index[root] or assigns[root] >= 0:
                continue
            work = [(root, 0)]
            while work:
                v, pi = work.pop()
                if pi == 0:
                    index[v] = low[v] = counter
                    counter += 1
                    stack.append(v)
                    on_stack[v] = 1
                descended = False
                adj = wbin[v]
                while pi < len(adj):
                    w = adj[pi]
                    pi += 1
                    if assigns[w] >= 0:
                        continue
                    if index[w] == 0:
                        work.append((v, pi))
                        work.append((w, 0))
                        descended = True
                        break
                    if on_stack[w] and index[w] < low[v]:
                        low[v] = index[w]
                if descended:
                    continue
                if low[v] == index[v]:
                    scc: List[int] = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = 0
                        scc.append(w)
                        if w == v:
                            break
                    if len(scc) > 1:
                        sccs.append(scc)
                if work:
                    parent = work[-1][0]
                    if low[v] < low[parent]:
                        low[parent] = low[v]
        return sccs

    def _equivalences(self) -> Dict[int, int]:
        """Equivalent-literal map (lit -> representative); may refute."""
        s = self.solver
        sub: Dict[int, int] = {}
        for scc in self._binary_sccs():
            members = set(scc)
            rep = min(scc)
            if (rep ^ 1) in members:
                # l and ¬l in one cycle: both polarities are failed
                # literals; two RUP units then the empty clause.
                if s.proof is not None:
                    s.proof.append(("a", (rep ^ 1,)))
                self._enqueue_unit(rep ^ 1)
                if s.ok:
                    if s.proof is not None:
                        s.proof.append(("a", (rep,)))
                    self._enqueue_unit(rep)
                return {}
            for lit in scc:
                if lit != rep:
                    sub[lit] = rep
            if not (rep & 1):
                # Count each variable merge once (the dual SCC, whose
                # representative is rep^1, describes the same merges).
                s.stats.equivalent_literals += len(scc) - 1
        return sub

    def _apply_substitution(self, sub: Dict[int, int]) -> None:
        """Rewrite n-ary clauses onto SCC representatives.

        Binary clauses are left alone: they define the equivalences, keep
        substituted variables constrained (models stay valid), and make
        every rewritten clause RUP.
        """
        s = self.solver
        arena = s.arena
        asize = arena.size
        for cref in self._live_crefs():
            if asize[cref] < 3:
                continue
            lits = arena.literals(cref)
            mapped = [sub.get(lit, lit) for lit in lits]
            if mapped == lits:
                continue
            out: Set[int] = set(mapped)
            if any((lit ^ 1) in out for lit in out):
                # Tautology under the equivalence: implied by the kept
                # binary clauses, so the original is redundant.
                self._delete(cref)
                continue
            self._replace(cref, sorted(out))
            if not s.ok:
                return

    def _probe(self, budget: int) -> None:
        s = self.solver
        sub = self._equivalences()
        if not s.ok:
            return
        if sub:
            self._apply_substitution(sub)
            if not s.ok:
                return
        # Failed-literal probing on the roots of the binary implication
        # graph (in-degree 0, out-degree > 0): every implied literal is
        # revisited for free below its root.
        wbin = s.watches_bin
        assigns = s.assigns_lit
        n = 2 * s.n_vars
        indeg = [0] * n
        for p in range(n):
            if assigns[p] >= 0:
                continue
            for q in wbin[p]:
                indeg[q] += 1
        roots = [p for p in range(n) if wbin[p] and not indeg[p] and assigns[p] < 0]
        if not roots:
            return
        start = self._probe_cursor % len(roots)
        props_before = s.stats.propagations
        hbr_added = 0
        probed = 0
        reason = s.reason
        trail = s.trail
        for off in range(len(roots)):
            if s.stats.propagations - props_before > budget:
                break
            p = roots[(start + off) % len(roots)]
            probed += 1
            if assigns[p] >= 0:
                continue  # fixed by an earlier probe
            s._new_decision_level()
            s._unchecked_enqueue(p, NO_CLAUSE)
            confl = s._propagate()
            if confl != NO_CLAUSE:
                s._cancel_until(0)
                s.stats.failed_literals += 1
                if s.proof is not None:
                    # RUP: asserting p propagates to the conflict just seen.
                    s.proof.append(("a", (p ^ 1,)))
                self._enqueue_unit(p ^ 1)
                if not s.ok:
                    return
                continue
            if hbr_added < self.HBR_MAX:
                # Hyper-binary resolution: p implied q through a non-binary
                # chain; the shortcut (¬p ∨ q) is RUP by that same chain.
                base = s.trail_lim[0]
                for idx in range(base + 1, s.trail_size):
                    q = trail[idx]
                    r = reason[q >> 1]
                    if r < NO_CLAUSE and not ((BIN_BASE - r) & 1):
                        continue  # already implied by a binary clause
                    if q in wbin[p]:
                        continue  # direct edge exists
                    if s.proof is not None:
                        s.proof.append(("a", (p ^ 1, q)))
                    cref = s.arena.alloc([p ^ 1, q], learnt=True, lbd=2)
                    s._attach(cref)
                    s.learnts_core.append(cref)
                    s.stats.hyper_binaries += 1
                    hbr_added += 1
                    if hbr_added >= self.HBR_MAX:
                        break
            s._cancel_until(0)
        self._probe_cursor += probed

    # ------------------------------------------------------------------
    # Phase: subsumption / self-subsuming resolution
    # ------------------------------------------------------------------

    def _subsume(self, ticks: int) -> None:
        s = self.solver
        arena = s.arena
        alearnt = arena.learnt
        crefs = self._live_crefs()
        sets: List[Set[int]] = []
        sigs: List[int] = []
        occ: Dict[int, List[int]] = defaultdict(list)
        for idx, cref in enumerate(crefs):
            cset = set(arena.literals(cref))
            sets.append(cset)
            sigs.append(_signature(cset))
            for lit in cset:
                occ[lit].append(idx)
        alive = [True] * len(crefs)
        spent = 0

        # Forward subsumption, smallest subsumers first.
        order = sorted(range(len(crefs)), key=lambda i: len(sets[i]))
        for idx in order:
            if spent > ticks:
                break
            if not alive[idx]:
                continue
            cset = sets[idx]
            sig = sigs[idx]
            size = len(cset)
            rarest = min(cset, key=lambda lit: len(occ[lit]))
            for other in occ[rarest]:
                if other == idx or not alive[other]:
                    continue
                spent += 1
                if sig & ~sigs[other]:
                    continue
                if len(sets[other]) >= size and cset <= sets[other]:
                    if alearnt[crefs[idx]] and not alearnt[crefs[other]]:
                        # A learnt clause subsumes an irredundant one:
                        # promote the subsumer so the formula keeps an
                        # irredundant witness (membership fixed in _finish).
                        alearnt[crefs[idx]] = 0
                        s.clauses.append(crefs[idx])
                    self._delete(crefs[other])
                    alive[other] = False
                    s.stats.subsumed_clauses += 1

        # Self-subsuming resolution: C ∨ l strengthened by D ∨ ¬l, D ⊆ C.
        for idx in range(len(crefs)):
            if spent > ticks:
                break
            if not alive[idx]:
                continue
            strengthened = True
            while strengthened and spent <= ticks and s.ok:
                strengthened = False
                for lit in list(sets[idx]):
                    allowed = sigs[idx] | (1 << ((lit ^ 1) & 63))
                    for other in occ[lit ^ 1]:
                        if not alive[other] or other == idx:
                            continue
                        spent += 1
                        if sigs[other] & ~allowed:
                            continue
                        oset = sets[other]
                        if (lit ^ 1) not in oset:
                            continue  # stale occurrence entry
                        rest = oset - {lit ^ 1}
                        if rest and rest <= (sets[idx] - {lit}):
                            new_set = sets[idx] - {lit}
                            ncref = self._replace(crefs[idx], sorted(new_set))
                            s.stats.strengthened_clauses += 1
                            sets[idx] = new_set
                            sigs[idx] = _signature(new_set)
                            if ncref is None:
                                alive[idx] = False
                            else:
                                crefs[idx] = ncref
                            strengthened = True
                            break
                    if strengthened or not s.ok:
                        break
                if not alive[idx]:
                    break
            if not s.ok:
                return

    # ------------------------------------------------------------------
    # Phase: vivification
    # ------------------------------------------------------------------

    def _vivify_one(self, cref: int) -> None:
        s = self.solver
        arena = s.arena
        assigns = s.assigns_lit
        if arena.size[cref] < 0:
            return
        lits = arena.literals(cref)
        for lit in lits:
            if assigns[lit] > 0:
                return  # satisfied at level 0; cleaning will delete it
        learnt = bool(arena.learnt[cref])
        old_lbd = arena.lbd[cref]
        # Reallocation must not erase the clause's learned usefulness
        # signals: activity drives both eviction order and vivification
        # candidate order, so zeroing it here would wipe exactly the
        # hottest clauses every pass.
        old_act = arena.act[cref]
        old_tier = arena.tier[cref]
        old_touch = arena.touch[cref]
        # Free first so the clause can neither satisfy nor propagate
        # against itself while its own negation is being asserted.
        if arena.size[cref] <= 3:
            s._detach_small(cref)
        arena.free(cref)
        new: List[int] = []
        s._new_decision_level()
        for lit in lits:
            v = assigns[lit]
            if v > 0:
                # ¬(prefix) implies lit: the clause truncates here.
                new.append(lit)
                break
            if v == 0:
                continue  # ¬(prefix) implies ¬lit: drop the literal
            new.append(lit)
            s._unchecked_enqueue(lit ^ 1, NO_CLAUSE)
            if s._propagate() != NO_CLAUSE:
                break  # ¬(prefix) is contradictory: the prefix is a clause
        s._cancel_until(0)
        if len(new) < len(lits):
            s.stats.vivified_clauses += 1
            s.stats.vivified_literals += len(lits) - len(new)
            proof = s.proof
            if proof is not None:
                # Addition first: the original clause (deleted second)
                # closes the new clause's unit-propagation check.
                proof.append(("a", tuple(new)))
                proof.append(("d", tuple(lits)))
            if not new:
                s.ok = False  # the add line was the empty clause
                return
            if len(new) == 1:
                self._enqueue_unit(new[0])
                return
            ncref = arena.alloc(new, learnt=learnt, lbd=min(old_lbd, len(new)))
            s._attach(ncref)
            if learnt:
                s._register_learnt(ncref, arena.lbd[ncref])
                arena.touch[ncref] = old_touch
            else:
                s.clauses.append(ncref)
            arena.act[ncref] = old_act
        else:
            # No gain: reinstall verbatim, no proof traffic.
            ncref = arena.alloc(lits, learnt=learnt, lbd=old_lbd)
            s._attach(ncref)
            if learnt:
                s._register_learnt(ncref, old_lbd)
                arena.tier[ncref] = old_tier
                arena.touch[ncref] = old_touch
            else:
                s.clauses.append(ncref)
            arena.act[ncref] = old_act

    def _vivify(self, budget: int) -> None:
        s = self.solver
        arena = s.arena
        asize = arena.size
        act = arena.act
        # Most active mid/low-value learnts first: they are both the most
        # frequently revisited and the most likely to carry dead literals.
        learnt_cands = [
            c
            for c in s.learnts_tier2 + s.learnts_local
            if asize[c] >= 3
        ]
        learnt_cands.sort(key=lambda c: -act[c])
        # Long irredundant clauses rotate under a persistent cursor so
        # successive passes cover the whole formula.
        irr_cands: List[int] = []
        n_clauses = len(s.clauses)
        if n_clauses:
            start = self._vivify_cursor % n_clauses
            scanned = 0
            while scanned < n_clauses and len(irr_cands) < self.VIVIFY_IRR_MAX:
                cref = s.clauses[(start + scanned) % n_clauses]
                scanned += 1
                if asize[cref] >= self.VIVIFY_IRR_MIN_SIZE:
                    irr_cands.append(cref)
            self._vivify_cursor = start + scanned
        props_before = s.stats.propagations
        for cref in learnt_cands + irr_cands:
            if s.stats.propagations - props_before > budget:
                break
            self._vivify_one(cref)
            if not s.ok:
                return

    # ------------------------------------------------------------------
    # Phase: bounded variable elimination (startup only)
    # ------------------------------------------------------------------

    def _eliminate(self) -> None:
        """SatELite-style bounded elimination of *thawed* variables.

        Runs only while no learnt clauses exist (i.e. right after
        encoding): learnt clauses may mention candidate variables, and
        rewriting them is not worth the bookkeeping.  Models are extended
        over eliminated variables via the solver's reconstructor.
        """
        s = self.solver
        if s.learnts_core or s.learnts_tier2 or s.learnts_local:
            return
        arena = s.arena
        assigns = s.assigns_lit
        candidates = sorted(
            v
            for v in s._thawed
            if v not in s._eliminated and assigns[v << 1] < 0
        )
        if not candidates:
            return
        occ: Dict[int, List[int]] = defaultdict(list)
        for cref in s.clauses:
            if arena.size[cref] < 0:
                continue
            for lit in arena.literals(cref):
                occ[lit].append(cref)
        proof = s.proof
        for var in candidates:
            pos = [c for c in occ[2 * var] if arena.size[c] >= 0]
            negs = [c for c in occ[2 * var + 1] if arena.size[c] >= 0]
            if not pos and not negs:
                continue
            if len(pos) > self.ELIM_MAX_OCC or len(negs) > self.ELIM_MAX_OCC:
                continue
            pos_lits = [arena.literals(c) for c in pos]
            neg_lits = [arena.literals(c) for c in negs]
            resolvents: List[List[int]] = []
            for cp in pos_lits:
                for cn in neg_lits:
                    merged = {lit for lit in cp if lit >> 1 != var}
                    merged.update(lit for lit in cn if lit >> 1 != var)
                    if any((lit ^ 1) in merged for lit in merged):
                        continue  # tautology
                    resolvents.append(sorted(merged))
            if len(resolvents) > len(pos) + len(negs):
                continue  # would grow the formula
            # Commit: resolvent additions first (their RUP checks resolve
            # against the originals), then delete every occurrence.
            if s._recon is None:
                s._recon = ModelReconstructor()
            s._recon.record_elimination(var, pos_lits)
            if proof is not None:
                for res in resolvents:
                    proof.append(("a", tuple(res)))
            for cref, lits_c in zip(pos + negs, pos_lits + neg_lits):
                if proof is not None:
                    proof.append(("d", tuple(lits_c)))
                if arena.size[cref] <= 3:
                    s._detach_small(cref)
                arena.free(cref)
            for res in resolvents:
                if not res:
                    s.ok = False
                    if proof is not None:
                        proof.append(("a", ()))
                    return
                if len(res) == 1:
                    self._enqueue_unit(res[0])
                    if not s.ok:
                        return
                    continue
                ncref = arena.alloc(res)
                s._attach(ncref)
                s.clauses.append(ncref)
                for lit in res:
                    occ[lit].append(ncref)
            s._eliminated.add(var)
            s._thawed.discard(var)
            s.stats.eliminated_vars += 1
