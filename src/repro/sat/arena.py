"""Flat clause arena: cache-friendly clause storage for the CDCL core.

The original solver chased per-clause ``Clause(list)`` objects through
per-literal watcher lists of object references — every propagation step
touched several heap objects and their attribute dictionaries/slots.  The
arena replaces all of that with flat, index-addressed storage in the style
of MiniSat's region allocator:

* all literals of all clauses live in **one** flat buffer (``lits``);
* a clause is an integer **reference** (``cref``) indexing parallel
  metadata arrays: ``start`` (offset into ``lits``), ``size`` (literal
  count; ``-1`` marks a dead clause), ``learnt`` flag, ``lbd``, and
  floating-point ``act`` (clause activity);
* deletion is O(1): mark dead and account the wasted literals.  Watcher
  entries pointing at dead clauses are dropped lazily during propagation,
  so :meth:`Solver._reduce_db` never scans watch lists;
* when the wasted fraction crosses ``GC_FRACTION`` the solver triggers
  :meth:`compact`, which rebuilds ``lits`` densely.  Crefs are *stable*
  across compaction (only ``start`` moves), so watcher lists and reason
  pointers never need remapping.  Dead crefs become reusable only after
  the solver has purged its watch lists (see :meth:`recycle`), which makes
  lazy watcher removal safe: a stale watcher can never alias a new clause.

The arena deliberately knows nothing about solving — it is a typed heap.
"""

from __future__ import annotations

from array import array
from itertools import accumulate
from typing import Iterable, List, Sequence, Union

#: Trigger compaction when this fraction of ``lits`` is dead storage.
GC_FRACTION = 0.25

IntBuf = Union[List[int], "array[int]"]
FloatBuf = Union[List[float], "array[float]"]


class ClauseArena:
    """Flat storage for clauses addressed by stable integer references."""

    __slots__ = (
        "typed",
        "lits",
        "start",
        "size",
        "learnt",
        "lbd",
        "spos",
        "act",
        "tier",
        "touch",
        "wasted",
        "_pending_free",
        "_free",
        "n_live",
        "version",
    )

    def __init__(self, typed: bool = False) -> None:
        # Two storage modes, same algorithms (both containers share the
        # list subscript/append/extend API):
        #
        # - ``typed=False``: plain lists.  In CPython, list indexing is
        #   faster than array('i') indexing (no per-access int boxing),
        #   while still being one contiguous buffer of machine words
        #   (pointers).  The pure-Python hot loops index ``lits``/
        #   ``start``/``size`` on every non-blocked watcher visit.
        # - ``typed=True``: array('i'/'d') buffers whose raw memory the
        #   compiled kernel reads and writes zero-copy via cffi
        #   ``from_buffer`` (see repro.sat.kernel).
        self.typed = typed
        self.lits: IntBuf = array("i") if typed else []
        self.start: IntBuf = array("i") if typed else []
        self.size: IntBuf = array("i") if typed else []  # -1 == dead
        self.learnt: IntBuf = array("i") if typed else []
        self.lbd: IntBuf = array("i") if typed else []
        # Circular new-watch search position (clause-relative, >= 2): the
        # propagator resumes its replacement-literal scan where the last
        # one left off instead of rescanning the false prefix each visit
        # (Gent's "watched literals with positional memory").
        self.spos: IntBuf = array("i") if typed else []
        self.act: FloatBuf = array("d") if typed else []
        # Learnt-clause tier (see Solver._reduce_db): 0 = core (kept
        # forever), 1 = tier2 (demoted when unused), 2 = local (reduced
        # aggressively).  Problem clauses stay at 0 and never consult it.
        self.tier: IntBuf = array("i") if typed else []
        # Conflict-count stamp of the last time conflict analysis walked
        # the clause; drives tier2 -> local demotion.
        self.touch: IntBuf = array("i") if typed else []
        #: literals occupied by dead clauses (reclaimed by compact()).
        self.wasted = 0
        # Dead crefs whose watcher entries may still linger; they move to
        # the reusable free list only after the solver purges its watches.
        self._pending_free: List[int] = []
        self._free: List[int] = []
        self.n_live = 0
        # Bumped whenever a buffer may have grown or been replaced (every
        # alloc / compact).  The native kernel caches raw buffer addresses
        # and uses this to know when to re-bind them (Solver._k_sync).
        self.version = 0

    # -- allocation ----------------------------------------------------

    def alloc(self, literals: Sequence[int], learnt: bool = False, lbd: int = 0) -> int:
        """Store a clause; returns its (stable) reference.

        ``lbd`` seeds the clause's literal-block-distance metadata so
        callers that know it at allocation time (conflict analysis, clause
        import) need not write ``self.lbd[cref]`` separately.
        """
        cref = self._free.pop() if self._free else -1
        base = len(self.lits)
        self.lits.extend(literals)
        if cref < 0:
            cref = len(self.start)
            self.start.append(base)
            self.size.append(len(literals))
            self.learnt.append(1 if learnt else 0)
            self.lbd.append(lbd)
            self.spos.append(2)
            self.act.append(0.0)
            self.tier.append(0)
            self.touch.append(0)
        else:
            self.start[cref] = base
            self.size[cref] = len(literals)
            self.learnt[cref] = 1 if learnt else 0
            self.lbd[cref] = lbd
            self.spos[cref] = 2
            self.act[cref] = 0.0
            self.tier[cref] = 0
            self.touch[cref] = 0
        self.n_live += 1
        self.version += 1
        return cref

    def alloc_bulk(self, flat: Sequence[int], sizes: Sequence[int]) -> range:
        """Store many clauses at once; returns their (stable) references.

        ``flat`` holds the literals of every clause back to back and
        ``sizes`` the per-clause literal counts.  The layout and metadata
        are exactly what a loop of :meth:`alloc` calls would have produced
        for the same clauses on a fresh tail (problem clauses: not learnt,
        lbd 0, spos 2), but the parallel arrays are extended once each and
        ``version`` is bumped once instead of per clause.  Unlike
        :meth:`alloc` this never reuses freed crefs — bulk loading is an
        encode-time operation and runs before any clause has died.
        """
        n = len(sizes)
        base = len(self.lits)
        self.lits.extend(flat)
        cref0 = len(self.start)
        # accumulate(initial=base) yields base, base+s0, ... — the last
        # element is the one-past-the-end offset, which no clause owns.
        starts = list(accumulate(sizes, initial=base))
        starts.pop()
        self.start.extend(starts)
        self.size.extend(sizes)
        zeros = [0] * n
        self.learnt.extend(zeros)
        self.lbd.extend(zeros)
        self.spos.extend([2] * n)
        self.act.extend([0.0] * n)
        self.tier.extend(zeros)
        self.touch.extend(zeros)
        self.n_live += n
        self.version += 1
        return range(cref0, cref0 + n)

    def free(self, cref: int) -> None:
        """Mark ``cref`` dead.  Its cref is recycled only after a purge."""
        sz = self.size[cref]
        if sz < 0:
            return
        self.wasted += sz
        self.size[cref] = -1
        self._pending_free.append(cref)
        self.n_live -= 1

    # -- access --------------------------------------------------------

    def literals(self, cref: int) -> List[int]:
        """The clause's literals as a fresh list (slow path / logging)."""
        base = self.start[cref]
        return list(self.lits[base : base + self.size[cref]])

    def is_dead(self, cref: int) -> bool:
        return self.size[cref] < 0

    def __len__(self) -> int:
        return self.n_live

    # -- garbage collection --------------------------------------------

    def needs_gc(self) -> bool:
        return self.wasted > 0 and self.wasted >= GC_FRACTION * len(self.lits)

    def compact(self) -> None:
        """Rebuild ``lits`` densely.  Crefs stay valid; only offsets move."""
        new_lits: IntBuf = array("i") if self.typed else []
        start, size, lits = self.start, self.size, self.lits
        for cref in range(len(start)):
            sz = size[cref]
            if sz < 0:
                continue
            base = start[cref]
            start[cref] = len(new_lits)
            new_lits.extend(lits[base : base + sz])
        self.lits = new_lits
        self.wasted = 0
        self.version += 1

    def recycle(self) -> None:
        """Make pending-dead crefs reusable.

        Only call after every watcher entry referencing them is gone
        (the solver's watch purge); otherwise a stale watcher could alias
        a newly allocated clause.
        """
        self._free.extend(self._pending_free)
        self._pending_free.clear()

    def live_refs(self) -> Iterable[int]:
        """All live clause references (in allocation order)."""
        size = self.size
        return (cref for cref in range(len(size)) if size[cref] >= 0)

    def check_invariants(self) -> None:
        """Internal consistency checks (used by tests; O(total literals))."""
        seen_spans = []
        for cref in range(len(self.start)):
            sz = self.size[cref]
            if sz < 0:
                continue
            base = self.start[cref]
            if base < 0 or base + sz > len(self.lits):
                raise AssertionError(f"cref {cref} span out of bounds")
            seen_spans.append((base, base + sz, cref))
        seen_spans.sort()
        for (a_lo, a_hi, a), (b_lo, b_hi, b) in zip(seen_spans, seen_spans[1:]):
            if b_lo < a_hi:
                raise AssertionError(f"crefs {a} and {b} overlap in the arena")
        dead = sum(1 for sz in self.size if sz < 0)
        if dead != len(self._pending_free) + len(self._free):
            raise AssertionError("dead-cref accounting out of sync")
        if self.n_live != len(self.size) - dead:
            raise AssertionError("live-count accounting out of sync")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ClauseArena(live={self.n_live}, slots={len(self.size)}, "
            f"lits={len(self.lits)}, wasted={self.wasted})"
        )
