"""Brute-force reference solver used to validate the CDCL engine in tests.

Deliberately simple: enumerate all ``2**n`` assignments.  Only usable for tiny
formulas, which is exactly what property-based tests generate.
"""

from __future__ import annotations

from itertools import product
from typing import List, Optional

from .formula import CNF


def brute_force_solve(cnf: CNF) -> Optional[List[bool]]:
    """Return a satisfying assignment for ``cnf`` or ``None`` if UNSAT."""
    if cnf.n_vars > 22:
        raise ValueError("brute force limited to 22 variables")
    for bits in product((False, True), repeat=cnf.n_vars):
        assignment = list(bits)
        if cnf.evaluate(assignment):
            return assignment
    return None


def count_models(cnf: CNF) -> int:
    """Count all satisfying assignments of ``cnf`` (exponential)."""
    if cnf.n_vars > 22:
        raise ValueError("brute force limited to 22 variables")
    count = 0
    for bits in product((False, True), repeat=cnf.n_vars):
        if cnf.evaluate(list(bits)):
            count += 1
    return count
