"""cffi build glue for the native propagation kernel.

Build with::

    PYTHONPATH=src python -m repro.sat.kernel.build

which compiles ``kernel.c`` into the extension module
``repro.sat.kernel._native`` next to this file.  The build needs only a C
compiler and the ``cffi`` package; nothing is downloaded.  If either is
missing the solver silently runs on the pure-Python kernel (``kernel="auto"``)
or raises a clear error (``kernel="native"``).

``-ffp-contract=off`` is load-bearing: the kernel re-implements the VSIDS
activity arithmetic and must produce bit-identical doubles to CPython, which
never fuses multiply-adds.  Without it, a contracted FMA could flip a heap
comparison and silently diverge the two backends' decision order.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

# The C declarations shared between the compiled module and its callers.
# Keep in sync with kernel.c (checked at compile time by cffi).
CDEF = """
typedef struct kernel kernel_t;

kernel_t *k_new(void);
void k_free(kernel_t *k);
void k_ensure_lits(kernel_t *k, int32_t n_lits);

void k_bind_vars(kernel_t *k, uintptr_t assigns, uintptr_t polarity,
                 uintptr_t seen, uintptr_t level, uintptr_t reason,
                 uintptr_t trail, uintptr_t activity, uintptr_t heap,
                 uintptr_t heap_idx, int32_t n_vars);
void k_bind_arena(kernel_t *k, uintptr_t lits, uintptr_t start, uintptr_t size,
                  uintptr_t spos, uintptr_t learnt, uintptr_t act,
                  uintptr_t touch);

void k_attach_bin(kernel_t *k, int32_t l0, int32_t l1);
void k_detach_bin(kernel_t *k, int32_t l0, int32_t l1);
void k_attach_ter(kernel_t *k, int32_t l0, int32_t l1, int32_t l2);
void k_detach_ter(kernel_t *k, int32_t l0, int32_t l1, int32_t l2);
void k_attach_nary(kernel_t *k, int32_t cref, int32_t l0, int32_t l1);
void k_load_clauses(kernel_t *k, int32_t cref0, int32_t n);
int32_t k_normalize_clauses(kernel_t *k, const int32_t *flat,
                            const int32_t *sizes, int32_t n,
                            int32_t *out_flat, int32_t *out_sizes,
                            int32_t *io);
void k_load_list(kernel_t *k, int32_t which, int32_t lit, const int32_t *data,
                 int32_t n);
void k_purge_dead(kernel_t *k);
int32_t k_copy_list(kernel_t *k, int32_t which, int32_t lit, int32_t *out,
                    int32_t cap);

int32_t k_cancel_until(kernel_t *k, int32_t heap_n, int32_t trail_size,
                       int32_t bound);
int32_t k_pick_branch(kernel_t *k, int32_t *heap_n_io);

int64_t k_propagate(kernel_t *k, int32_t trail_size, int32_t qhead,
                    int32_t dlevel, int64_t *out);

void k_analyze(kernel_t *k, int64_t confl, const int32_t *confl_lits,
               int32_t confl_n, int32_t n_vars, int32_t n_slots,
               int32_t trail_size, int32_t cur_level, int32_t nconf,
               double var_inc, double cla_inc, int32_t *out_learnt,
               int64_t *out_ints, double *out_dbl);
"""

EXTRA_COMPILE_ARGS = ["-O2", "-ffp-contract=off", "-fno-fast-math"]


def ffibuilder() -> Any:
    import cffi

    source = (Path(__file__).resolve().parent / "kernel.c").read_text()
    ffi = cffi.FFI()
    ffi.cdef(CDEF)
    ffi.set_source(
        "repro.sat.kernel._native",
        source,
        extra_compile_args=EXTRA_COMPILE_ARGS,
    )
    return ffi


def build(verbose: bool = False) -> str:
    """Compile the extension in place (under the ``src`` tree). Returns the
    path of the built module."""
    # __file__ = <root>/repro/sat/kernel/build.py -> tmpdir must be <root>
    # so cffi lays the module out along its dotted package path.
    root = Path(__file__).resolve().parents[3]
    out = ffibuilder().compile(tmpdir=str(root), verbose=verbose)
    return str(out)


if __name__ == "__main__":
    import sys

    print(build(verbose="-v" in sys.argv[1:]))
