/* Native propagation/analysis kernel for repro.sat.Solver.
 *
 * This file is compiled by cffi (see build.py) into the extension module
 * ``repro.sat.kernel._native``.  It is a *mirror*, not a fork: every loop
 * below transcribes the corresponding pure-Python code in
 * ``repro/sat/solver.py`` statement for statement — same watcher visit
 * order, same swap-remove semantics, same circular new-watch search, same
 * first-UIP resolution, bumping, rescaling and minimisation order, and
 * the same IEEE-754 double operations in the same sequence (the build
 * passes -ffp-contract=off so no multiply-add fusion can perturb VSIDS
 * activities).  The differential tests in tests/test_arena.py hold the two
 * implementations to byte-identical trails, learnt clauses and proofs.
 *
 * Ownership split with the Python side:
 *
 * - per-variable state (assignments, levels, reasons, trail, seen flags,
 *   VSIDS activities and heap) and the clause arena live in Python-owned
 *   typed buffers (array('b'/'B'/'i'/'q'/'d')); their raw addresses are
 *   bound into the kernel (k_bind_vars / k_bind_arena) and rebound by the
 *   Python side whenever CPython may have realloc'd one on growth;
 * - the three watch schemes (binary / ternary / n-ary) live in C-owned
 *   per-literal vectors, because the propagation loop both scans and
 *   rewrites them; Python mirrors every attach/detach through the k_*
 *   entry points and can read them back via k_copy_list (invariants,
 *   differential tests).
 *
 * Conventions (identical to the Python module):
 *   literal l = 2*var + sign;  truth values TRUE=1 FALSE=0 UNDEF=-1;
 *   NO_CLAUSE = -1;  BIN_BASE = -2; a reason r < NO_CLAUSE packs the
 *   other literal(s) of a binary/ternary clause as k = BIN_BASE - r
 *   (even k: binary, other = k >> 1; odd k: ternary, others = k >> 33
 *   and (k >> 1) & 0xFFFFFFFF).
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define NO_CLAUSE (-1)
#define BIN_BASE (-2LL)
#define RESCALE_LIMIT 1e100

typedef struct {
    int32_t *data;
    int32_t len;
    int32_t cap;
} vec_t;

struct kernel {
    /* Per-literal watch lists, indexed by literal. */
    vec_t *bin;  /* flat: the other literal of each binary clause */
    vec_t *ter;  /* flat (a, b) pairs of each ternary clause */
    vec_t *nary; /* flat (cref, blocker) pairs */
    int32_t n_lits;
    /* Conflict-analysis scratch. */
    int32_t *to_clear;
    int32_t *lvl_stamp;
    int32_t stamp;
    int32_t n_vars_cap;
    /* Bound views of the Python-owned buffers (k_bind_vars /
     * k_bind_arena).  The Python side rebinds whenever a buffer may have
     * been reallocated (any new_var; any arena version bump), so between
     * binds these pointers are stable and the hot entry points take no
     * buffer arguments at all. */
    int8_t *assigns;
    int8_t *polarity;
    uint8_t *seen;
    int32_t *level;
    int32_t *trail;
    int32_t *heap;
    int32_t *heap_idx;
    int64_t *reason;
    double *activity;
    int32_t *alits;
    int32_t *astart;
    int32_t *asize;
    int32_t *aspos;
    int32_t *alearnt;
    int32_t *atouch;
    double *aact;
};
typedef struct kernel kernel_t;

/* -- vectors ----------------------------------------------------------- */

static void vec_reserve(vec_t *v, int32_t need) {
    if (v->cap >= need)
        return;
    int32_t cap = v->cap ? v->cap : 4;
    while (cap < need)
        cap *= 2;
    v->data = (int32_t *)realloc(v->data, (size_t)cap * sizeof(int32_t));
    v->cap = cap;
}

static void vec_push(vec_t *v, int32_t x) {
    vec_reserve(v, v->len + 1);
    v->data[v->len++] = x;
}

static void vec_push2(vec_t *v, int32_t x, int32_t y) {
    vec_reserve(v, v->len + 2);
    v->data[v->len] = x;
    v->data[v->len + 1] = y;
    v->len += 2;
}

/* -- kernel lifecycle --------------------------------------------------- */

kernel_t *k_new(void) {
    kernel_t *k = (kernel_t *)calloc(1, sizeof(kernel_t));
    return k;
}

void k_free(kernel_t *k) {
    if (!k)
        return;
    for (int32_t i = 0; i < k->n_lits; i++) {
        free(k->bin[i].data);
        free(k->ter[i].data);
        free(k->nary[i].data);
    }
    free(k->bin);
    free(k->ter);
    free(k->nary);
    free(k->to_clear);
    free(k->lvl_stamp);
    free(k);
}

void k_ensure_lits(kernel_t *k, int32_t n_lits) {
    if (k->n_lits >= n_lits)
        return;
    int32_t cap = k->n_lits ? k->n_lits : 16;
    while (cap < n_lits)
        cap *= 2;
    k->bin = (vec_t *)realloc(k->bin, (size_t)cap * sizeof(vec_t));
    k->ter = (vec_t *)realloc(k->ter, (size_t)cap * sizeof(vec_t));
    k->nary = (vec_t *)realloc(k->nary, (size_t)cap * sizeof(vec_t));
    memset(k->bin + k->n_lits, 0, (size_t)(cap - k->n_lits) * sizeof(vec_t));
    memset(k->ter + k->n_lits, 0, (size_t)(cap - k->n_lits) * sizeof(vec_t));
    memset(k->nary + k->n_lits, 0, (size_t)(cap - k->n_lits) * sizeof(vec_t));
    k->n_lits = cap;
}

static void k_ensure_vars(kernel_t *k, int32_t n_vars) {
    if (k->n_vars_cap >= n_vars + 1)
        return;
    int32_t cap = k->n_vars_cap ? k->n_vars_cap : 16;
    while (cap < n_vars + 1)
        cap *= 2;
    k->to_clear = (int32_t *)realloc(k->to_clear, (size_t)cap * sizeof(int32_t));
    k->lvl_stamp = (int32_t *)realloc(k->lvl_stamp, (size_t)cap * sizeof(int32_t));
    memset(k->lvl_stamp + k->n_vars_cap, 0,
           (size_t)(cap - k->n_vars_cap) * sizeof(int32_t));
    k->n_vars_cap = cap;
}

/* -- buffer binding ------------------------------------------------------ */

/* Addresses come in as integers (``array.buffer_info()[0]`` on the Python
 * side) rather than cffi-wrapped pointers: taking a raw address never
 * exports the array's buffer, so Python remains free to grow the arrays.
 * Correctness contract: the caller rebinds before the next kernel call
 * whenever a bound buffer may have moved (tracked by ``n_vars`` for the
 * per-variable buffers and an arena version counter for the arena). */
void k_bind_vars(kernel_t *k, uintptr_t assigns, uintptr_t polarity,
                 uintptr_t seen, uintptr_t level, uintptr_t reason,
                 uintptr_t trail, uintptr_t activity, uintptr_t heap,
                 uintptr_t heap_idx, int32_t n_vars) {
    k->assigns = (int8_t *)assigns;
    k->polarity = (int8_t *)polarity;
    k->seen = (uint8_t *)seen;
    k->level = (int32_t *)level;
    k->reason = (int64_t *)reason;
    k->trail = (int32_t *)trail;
    k->activity = (double *)activity;
    k->heap = (int32_t *)heap;
    k->heap_idx = (int32_t *)heap_idx;
    k_ensure_lits(k, 2 * n_vars);
    k_ensure_vars(k, n_vars);
}

void k_bind_arena(kernel_t *k, uintptr_t lits, uintptr_t start, uintptr_t size,
                  uintptr_t spos, uintptr_t learnt, uintptr_t act,
                  uintptr_t touch) {
    k->alits = (int32_t *)lits;
    k->astart = (int32_t *)start;
    k->asize = (int32_t *)size;
    k->aspos = (int32_t *)spos;
    k->alearnt = (int32_t *)learnt;
    k->aact = (double *)act;
    k->atouch = (int32_t *)touch;
}

/* -- watch maintenance (mirrors Solver._attach / _detach_small) --------- */

void k_attach_bin(kernel_t *k, int32_t l0, int32_t l1) {
    int32_t hi = (l0 > l1 ? l0 : l1) + 1;
    k_ensure_lits(k, hi);
    vec_push(&k->bin[l0 ^ 1], l1);
    vec_push(&k->bin[l1 ^ 1], l0);
}

/* Mirror of ``list.remove``: drop the first occurrence, preserving order. */
static void vec_remove_first(vec_t *v, int32_t x) {
    for (int32_t i = 0; i < v->len; i++) {
        if (v->data[i] == x) {
            memmove(v->data + i, v->data + i + 1,
                    (size_t)(v->len - i - 1) * sizeof(int32_t));
            v->len--;
            return;
        }
    }
}

void k_detach_bin(kernel_t *k, int32_t l0, int32_t l1) {
    if ((l0 ^ 1) < k->n_lits)
        vec_remove_first(&k->bin[l0 ^ 1], l1);
    if ((l1 ^ 1) < k->n_lits)
        vec_remove_first(&k->bin[l1 ^ 1], l0);
}

void k_attach_ter(kernel_t *k, int32_t l0, int32_t l1, int32_t l2) {
    int32_t hi = l0 > l1 ? l0 : l1;
    if (l2 > hi)
        hi = l2;
    k_ensure_lits(k, hi + 1);
    vec_push2(&k->ter[l0 ^ 1], l1, l2);
    vec_push2(&k->ter[l1 ^ 1], l0, l2);
    vec_push2(&k->ter[l2 ^ 1], l0, l1);
}

/* Mirror of Solver._detach_small's ternary branch: find the (y, z) pair in
 * either order, swap the final pair into its slot, truncate. */
static void ter_remove_pair(vec_t *v, int32_t y, int32_t z) {
    for (int32_t i = 0; i < v->len; i += 2) {
        int32_t p = v->data[i], q = v->data[i + 1];
        if ((p == y && q == z) || (p == z && q == y)) {
            v->data[i] = v->data[v->len - 2];
            v->data[i + 1] = v->data[v->len - 1];
            v->len -= 2;
            return;
        }
    }
}

void k_detach_ter(kernel_t *k, int32_t l0, int32_t l1, int32_t l2) {
    if ((l0 ^ 1) < k->n_lits)
        ter_remove_pair(&k->ter[l0 ^ 1], l1, l2);
    if ((l1 ^ 1) < k->n_lits)
        ter_remove_pair(&k->ter[l1 ^ 1], l0, l2);
    if ((l2 ^ 1) < k->n_lits)
        ter_remove_pair(&k->ter[l2 ^ 1], l0, l1);
}

void k_attach_nary(kernel_t *k, int32_t cref, int32_t l0, int32_t l1) {
    int32_t hi = (l0 > l1 ? l0 : l1) + 1;
    k_ensure_lits(k, hi);
    vec_push2(&k->nary[l0 ^ 1], cref, l1);
    vec_push2(&k->nary[l1 ^ 1], cref, l0);
}

/* Mirror of Solver._garbage_collect's watch purge: order-preserving
 * compaction dropping watchers of dead clauses (size < 0). */
void k_purge_dead(kernel_t *k) {
    const int32_t *asize = k->asize;
    for (int32_t lit = 0; lit < k->n_lits; lit++) {
        vec_t *ws = &k->nary[lit];
        int32_t j = 0;
        for (int32_t i = 0; i < ws->len; i += 2) {
            int32_t cref = ws->data[i];
            if (asize[cref] >= 0) {
                ws->data[j] = cref;
                ws->data[j + 1] = ws->data[i + 1];
                j += 2;
            }
        }
        ws->len = j;
    }
}

/* Bulk attach for clauses already loaded into the arena buffers
 * (ClauseArena.alloc_bulk): walk crefs [cref0, cref0 + n) and mirror what a
 * loop of k_attach_bin / k_attach_ter / k_attach_nary calls would have done,
 * in the same order, without one FFI round trip per clause.  The caller must
 * have rebound the arena (the bulk alloc bumps its version) before calling. */
void k_load_clauses(kernel_t *k, int32_t cref0, int32_t n) {
    const int32_t *alits = k->alits;
    const int32_t *astart = k->astart;
    const int32_t *asize = k->asize;
    for (int32_t c = cref0; c < cref0 + n; c++) {
        int32_t base = astart[c];
        int32_t sz = asize[c];
        int32_t l0 = alits[base];
        int32_t l1 = alits[base + 1];
        if (sz == 2) {
            k_attach_bin(k, l0, l1);
        } else if (sz == 3) {
            k_attach_ter(k, l0, l1, alits[base + 2]);
        } else {
            k_attach_nary(k, c, l0, l1);
        }
    }
}

/* Encode-time clause normalization (Solver.add_clauses_bulk, native path):
 * sort / dedup / tautology drop / level-0 strip against the bound assigns
 * view, exactly mirroring the Python add_clause loop.  Consumes raw clauses
 * io[0]..n-1 whose literals start at flat[io[1]]; surviving clauses with
 * >= 2 literals are appended, sorted, to out_flat / out_sizes (write
 * cursors io[2] / io[3], caller-sized: out_flat as large as flat, out_sizes
 * as large as sizes).  Stops at the first unit or empty survivor so the
 * caller can land the staged prefix and propagate at the exact point the
 * per-clause path would have.  Returns 0 when every clause was consumed,
 * 1 when a unit survived (written to io[4]), 2 on an empty clause (UNSAT).
 * io is committed on every return, so the caller just re-calls to resume. */
int32_t k_normalize_clauses(kernel_t *k, const int32_t *flat,
                            const int32_t *sizes, int32_t n,
                            int32_t *out_flat, int32_t *out_sizes,
                            int32_t *io) {
    const int8_t *assigns = k->assigns;
    int32_t idx = io[0];
    int32_t pos = io[1];
    int32_t oflat = io[2];
    int32_t osz = io[3];
    while (idx < n) {
        int32_t sz = sizes[idx];
        int32_t *s = out_flat + oflat; /* scratch: normalize in place */
        for (int32_t i = 0; i < sz; i++)
            s[i] = flat[pos + i];
        /* insertion sort: encoding clauses are short (2-3 dominate) */
        for (int32_t i = 1; i < sz; i++) {
            int32_t key = s[i];
            int32_t j = i - 1;
            while (j >= 0 && s[j] > key) {
                s[j + 1] = s[j];
                j--;
            }
            s[j + 1] = key;
        }
        idx++;
        pos += sz;
        /* Complement literals differ only in the low bit, so after the
         * sort any duplicate or tautology pair sits adjacent among the
         * kept literals — prev alone carries the whole seen-set. */
        int32_t m = 0;
        int32_t prev = -2;
        int32_t drop = 0;
        for (int32_t i = 0; i < sz; i++) {
            int32_t lit = s[i];
            if (lit == prev)
                continue; /* duplicate */
            if (lit == (prev ^ 1) && prev >= 0) {
                drop = 1; /* tautology */
                break;
            }
            int8_t v = assigns[lit];
            if (v > 0) {
                drop = 1; /* satisfied at level 0 */
                break;
            }
            if (v == 0)
                continue; /* falsified at level 0: strip */
            s[m++] = lit;
            prev = lit;
        }
        if (drop)
            continue;
        if (m >= 2) {
            oflat += m;
            out_sizes[osz++] = m;
            continue;
        }
        io[0] = idx;
        io[1] = pos;
        io[2] = oflat;
        io[3] = osz;
        if (m == 1) {
            io[4] = s[0];
            return 1;
        }
        return 2; /* empty clause */
    }
    io[0] = idx;
    io[1] = pos;
    io[2] = oflat;
    io[3] = osz;
    return 0;
}

/* Restore one per-literal watch list verbatim (snapshot restore): replaces
 * the list's contents with exactly ``data[0..n)``, in order.  The inverse of
 * k_copy_list. */
void k_load_list(kernel_t *k, int32_t which, int32_t lit, const int32_t *data,
                 int32_t n) {
    k_ensure_lits(k, lit + 1);
    vec_t *v = which == 0 ? &k->bin[lit] : which == 1 ? &k->ter[lit] : &k->nary[lit];
    vec_reserve(v, n);
    if (n)
        memcpy(v->data, data, (size_t)n * sizeof(int32_t));
    v->len = n;
}

/* Read-back for invariants and differential tests.
 * which: 0 = binary, 1 = ternary, 2 = n-ary.  Returns the list length;
 * copies min(len, cap) entries into out. */
int32_t k_copy_list(kernel_t *k, int32_t which, int32_t lit, int32_t *out,
                    int32_t cap) {
    if (lit >= k->n_lits)
        return 0;
    vec_t *v = which == 0 ? &k->bin[lit] : which == 1 ? &k->ter[lit] : &k->nary[lit];
    int32_t n = v->len < cap ? v->len : cap;
    for (int32_t i = 0; i < n; i++)
        out[i] = v->data[i];
    return v->len;
}

/* -- unit propagation (mirrors Solver._propagate) ------------------------ */

int64_t k_propagate(kernel_t *k, int32_t trail_size, int32_t qhead,
                    int32_t dlevel, int64_t *out) {
    int8_t *assigns = k->assigns;
    int32_t *level = k->level;
    int64_t *reason = k->reason;
    int32_t *trail = k->trail;
    int32_t *alits = k->alits;
    int32_t *astart = k->astart;
    int32_t *asize = k->asize;
    int32_t *aspos = k->aspos;
    int64_t confl = NO_CLAUSE;
    int32_t confl_n = 0;
    int32_t c0 = 0, c1 = 0, c2 = 0;
    while (qhead < trail_size) {
        int32_t p = trail[qhead];
        qhead++;
        int32_t false_lit = p ^ 1;
        int64_t breason = BIN_BASE - ((int64_t)false_lit << 1);
        /* Binary clauses first: one flat list of implied literals. */
        vec_t *wb = &k->bin[p];
        int32_t *bd = wb->data;
        int32_t blen = wb->len;
        for (int32_t bi = 0; bi < blen; bi++) {
            int32_t other = bd[bi];
            int8_t vo = assigns[other];
            if (vo < 0) {
                assigns[other] = 1;
                assigns[other ^ 1] = 0;
                int32_t var = other >> 1;
                level[var] = dlevel;
                reason[var] = breason;
                trail[trail_size] = other;
                trail_size++;
            } else if (vo == 0) { /* other is FALSE -> conflict */
                confl = BIN_BASE;
                c0 = other;
                c1 = false_lit;
                confl_n = 2;
                break;
            }
        }
        if (confl != NO_CLAUSE)
            break;
        /* Ternary clauses: scan the (a, b) pairs. */
        vec_t *wt = &k->ter[p];
        if (wt->len) {
            int64_t tbase = ((int64_t)false_lit << 33) | 1;
            int32_t *td = wt->data;
            int32_t tlen = wt->len;
            for (int32_t ti = 0; ti < tlen; ti += 2) {
                int32_t a = td[ti];
                int8_t va = assigns[a];
                if (va > 0)
                    continue;
                int32_t b = td[ti + 1];
                int8_t vb = assigns[b];
                if (vb > 0)
                    continue;
                if (va < 0) {
                    if (vb < 0)
                        continue; /* two unassigned: not unit yet */
                    assigns[a] = 1;
                    assigns[a ^ 1] = 0;
                    int32_t var = a >> 1;
                    level[var] = dlevel;
                    reason[var] = BIN_BASE - (tbase | ((int64_t)b << 1));
                    trail[trail_size] = a;
                    trail_size++;
                } else if (vb < 0) {
                    assigns[b] = 1;
                    assigns[b ^ 1] = 0;
                    int32_t var = b >> 1;
                    level[var] = dlevel;
                    reason[var] = BIN_BASE - (tbase | ((int64_t)a << 1));
                    trail[trail_size] = b;
                    trail_size++;
                } else { /* all three false -> conflict */
                    confl = BIN_BASE;
                    c0 = false_lit;
                    c1 = a;
                    c2 = b;
                    confl_n = 3;
                    break;
                }
            }
            if (confl != NO_CLAUSE)
                break;
        }
        vec_t *ws = &k->nary[p];
        int32_t n = ws->len;
        if (!n)
            continue;
        int32_t *wd = ws->data;
        /* Fast read-only scan: as long as blockers are true the list
         * needs no rewriting at all. */
        int32_t i = 0;
        while (i < n && assigns[wd[i + 1]] > 0)
            i += 2;
        if (i == n)
            continue;
        /* Swap-remove scan (identical bookkeeping to the Python loop). */
        while (i < n) {
            int32_t blocker = wd[i + 1];
            if (assigns[blocker] > 0) {
                i += 2;
                continue;
            }
            int32_t cref = wd[i];
            int32_t sz = asize[cref];
            if (sz < 0) { /* dead clause: drop its watcher lazily */
                n -= 2;
                wd[i] = wd[n];
                wd[i + 1] = wd[n + 1];
                continue;
            }
            int32_t base = astart[cref];
            int32_t first = alits[base];
            if (first == false_lit) {
                first = alits[base + 1];
                alits[base] = first;
                alits[base + 1] = false_lit;
            }
            int8_t v0 = assigns[first];
            if (first != blocker && v0 > 0) {
                wd[i + 1] = first; /* better blocker for future scans */
                i += 2;
                continue;
            }
            /* Circular new-watch search with positional memory. */
            int32_t sp = aspos[cref];
            int found = 0;
            int32_t kk = 0, lk = 0;
            for (kk = base + sp; kk < base + sz; kk++) {
                lk = alits[kk];
                if (assigns[lk] != 0) {
                    found = 1;
                    break;
                }
            }
            if (!found) {
                for (kk = base + 2; kk < base + sp; kk++) {
                    lk = alits[kk];
                    if (assigns[lk] != 0) {
                        found = 1;
                        break;
                    }
                }
            }
            if (found) {
                alits[base + 1] = lk;
                alits[kk] = false_lit;
                aspos[cref] = kk - base;
                /* lk is not FALSE, so lk^1 != p: this push can never
                 * realloc the list we are currently scanning. */
                vec_push2(&k->nary[lk ^ 1], cref, first);
                n -= 2;
                wd[i] = wd[n];
                wd[i + 1] = wd[n + 1];
                continue;
            }
            /* Clause is unit or conflicting. */
            wd[i + 1] = first;
            if (v0 == 0) { /* first is FALSE -> conflict */
                confl = cref;
                break;
            }
            i += 2;
            assigns[first] = 1;
            assigns[first ^ 1] = 0;
            int32_t var = first >> 1;
            level[var] = dlevel;
            reason[var] = cref;
            trail[trail_size] = first;
            trail_size++;
        }
        if (n != ws->len)
            ws->len = n;
        if (confl != NO_CLAUSE)
            break;
    }
    out[0] = qhead;
    out[1] = trail_size;
    out[2] = confl_n;
    out[3] = c0;
    out[4] = c1;
    out[5] = c2;
    return confl;
}

/* -- first-UIP conflict analysis (mirrors Solver._analyze) --------------- */

/* Mirror of _VarOrderHeap._percolate_up. */
static void percolate_up(int32_t *heap, int32_t *indices,
                         const double *activity, int32_t i) {
    int32_t x = heap[i];
    double ax = activity[x];
    while (i > 0) {
        int32_t p = (i - 1) >> 1;
        int32_t hp = heap[p];
        if (ax > activity[hp]) {
            heap[i] = hp;
            indices[hp] = i;
            i = p;
        } else {
            break;
        }
    }
    heap[i] = x;
    indices[x] = i;
}

/* Mirror of _VarOrderHeap._percolate_down (n = live heap size). */
static void percolate_down(int32_t *heap, int32_t *indices,
                           const double *activity, int32_t i, int32_t n) {
    int32_t x = heap[i];
    double ax = activity[x];
    for (;;) {
        int32_t left = 2 * i + 1;
        if (left >= n)
            break;
        int32_t right = left + 1;
        int32_t child =
            (right < n && activity[heap[right]] > activity[heap[left]])
                ? right
                : left;
        int32_t hc = heap[child];
        if (activity[hc] > ax) {
            heap[i] = hc;
            indices[hc] = i;
            i = child;
        } else {
            break;
        }
    }
    heap[i] = x;
    indices[x] = i;
}

/* Mirror of Solver._cancel_until's per-literal undo loop: unassign down to
 * ``bound``, save phases, clear reasons, reinsert into the VSIDS heap.
 * Returns the new live heap size. */
int32_t k_cancel_until(kernel_t *k, int32_t heap_n, int32_t trail_size,
                       int32_t bound) {
    int8_t *assigns = k->assigns;
    int8_t *polarity = k->polarity;
    int64_t *reason = k->reason;
    const int32_t *trail = k->trail;
    int32_t *heap = k->heap;
    int32_t *indices = k->heap_idx;
    const double *activity = k->activity;
    for (int32_t idx = trail_size - 1; idx >= bound; idx--) {
        int32_t lit = trail[idx];
        int32_t var = lit >> 1;
        assigns[lit] = -1;
        assigns[lit ^ 1] = -1;
        polarity[var] = (int8_t)(lit & 1);
        reason[var] = NO_CLAUSE;
        if (indices[var] < 0) {
            indices[var] = heap_n;
            heap[heap_n] = var;
            heap_n++;
            percolate_up(heap, indices, activity, heap_n - 1);
        }
    }
    return heap_n;
}

/* Mirror of Solver._pick_branch_lit: pop the activity heap until an
 * unassigned variable surfaces; apply the saved phase.  Returns the
 * decision literal or -1; *heap_n_io is updated in place. */
int32_t k_pick_branch(kernel_t *k, int32_t *heap_n_io) {
    const int8_t *assigns = k->assigns;
    const int8_t *polarity = k->polarity;
    int32_t *heap = k->heap;
    int32_t *indices = k->heap_idx;
    const double *activity = k->activity;
    int32_t n = *heap_n_io;
    int32_t ret = -1;
    while (n > 0) {
        int32_t x = heap[0];
        n--;
        int32_t last = heap[n];
        indices[x] = -1;
        if (n) {
            heap[0] = last;
            indices[last] = 0;
            percolate_down(heap, indices, activity, 0, n);
        }
        if (assigns[x << 1] < 0) {
            ret = 2 * x + (polarity[x] ? 1 : 0);
            break;
        }
    }
    *heap_n_io = n;
    return ret;
}

void k_analyze(kernel_t *k, int64_t confl, const int32_t *confl_lits,
               int32_t confl_n, int32_t n_vars, int32_t n_slots,
               int32_t trail_size, int32_t cur_level, int32_t nconf,
               double var_inc, double cla_inc, int32_t *out_learnt,
               int64_t *out_ints, double *out_dbl) {
    uint8_t *seen = k->seen;
    int32_t *level = k->level;
    int32_t *trail = k->trail;
    int64_t *reason = k->reason;
    int32_t *alits = k->alits;
    int32_t *astart = k->astart;
    int32_t *asize = k->asize;
    int32_t *alearnt = k->alearnt;
    double *aact = k->aact;
    int32_t *atouch = k->atouch;
    double *activity = k->activity;
    int32_t *heap = k->heap;
    int32_t *heap_idx = k->heap_idx;
    k_ensure_vars(k, n_vars);
    int32_t learnt_len = 1; /* out_learnt[0] holds the asserting literal */
    out_learnt[0] = 0;
    int32_t tc_len = 0;
    int32_t counter = 0;
    int32_t p = -1;
    int32_t index = trail_size - 1;
    int64_t cref = confl;
    for (;;) {
        int32_t span_buf[3];
        const int32_t *span;
        int32_t span_len;
        if (cref < NO_CLAUSE) {
            /* Binary/ternary clause packed into the reference itself. */
            if (p >= 0) {
                int64_t kk = BIN_BASE - cref;
                if (kk & 1) {
                    span_buf[0] = (int32_t)(kk >> 33);
                    span_buf[1] = (int32_t)((kk >> 1) & 0xFFFFFFFFLL);
                    span_len = 2;
                } else {
                    span_buf[0] = (int32_t)(kk >> 1);
                    span_len = 1;
                }
                span = span_buf;
            } else {
                span = confl_lits;
                span_len = confl_n;
            }
        } else {
            int32_t c = (int32_t)cref;
            if (alearnt[c]) {
                /* Mirror of Solver._cla_bump. */
                aact[c] += cla_inc;
                if (aact[c] > RESCALE_LIMIT) {
                    double inv = 1.0 / RESCALE_LIMIT;
                    for (int32_t s = 0; s < n_slots; s++)
                        if (alearnt[s])
                            aact[s] *= inv;
                    cla_inc *= inv;
                }
                atouch[c] = nconf;
            }
            int32_t base = astart[c];
            /* Skip position 0 of reason clauses (the implied literal). */
            int32_t st = p >= 0 ? base + 1 : base;
            span = alits + st;
            span_len = base + asize[c] - st;
        }
        for (int32_t si = 0; si < span_len; si++) {
            int32_t q = span[si];
            int32_t var = q >> 1;
            if (!seen[var] && level[var] > 0) {
                seen[var] = 1;
                k->to_clear[tc_len++] = var;
                /* Mirror of Solver._var_bump. */
                activity[var] += var_inc;
                if (activity[var] > RESCALE_LIMIT) {
                    double inv = 1.0 / RESCALE_LIMIT;
                    for (int32_t i2 = 0; i2 < n_vars; i2++)
                        activity[i2] *= inv;
                    var_inc *= inv;
                }
                if (heap_idx[var] >= 0)
                    percolate_up(heap, heap_idx, activity, heap_idx[var]);
                if (level[var] >= cur_level)
                    counter++;
                else
                    out_learnt[learnt_len++] = q;
            }
        }
        while (!seen[trail[index] >> 1])
            index--;
        p = trail[index];
        cref = reason[p >> 1];
        index--;
        counter--;
        if (counter <= 0)
            break;
    }
    out_learnt[0] = p ^ 1;

    /* Conflict-clause minimisation: drop literals implied by the rest.
     * In-place compaction: the write cursor never passes the read cursor. */
    int32_t j = 1;
    for (int32_t i = 1; i < learnt_len; i++) {
        int32_t q = out_learnt[i];
        int64_t r = reason[q >> 1];
        if (r == NO_CLAUSE) {
            out_learnt[j++] = q;
            continue;
        }
        if (r < NO_CLAUSE) {
            int64_t kk = BIN_BASE - r;
            int32_t xs[2];
            int32_t xn;
            if (kk & 1) {
                xs[0] = (int32_t)(kk >> 33);
                xs[1] = (int32_t)((kk >> 1) & 0xFFFFFFFFLL);
                xn = 2;
            } else {
                xs[0] = (int32_t)(kk >> 1);
                xn = 1;
            }
            for (int32_t t = 0; t < xn; t++) {
                int32_t xv = xs[t] >> 1;
                if (!seen[xv] && level[xv] > 0) {
                    out_learnt[j++] = q;
                    break;
                }
            }
            continue;
        }
        int redundant = 1;
        int32_t c = (int32_t)r;
        int32_t base = astart[c];
        for (int32_t t = base; t < base + asize[c]; t++) {
            int32_t x = alits[t];
            if (x == (q ^ 1))
                continue;
            int32_t xv = x >> 1;
            if (!seen[xv] && level[xv] > 0) {
                redundant = 0;
                break;
            }
        }
        if (!redundant)
            out_learnt[j++] = q;
    }
    learnt_len = j;

    /* Compute backtrack level and LBD. */
    int32_t bt_level;
    if (learnt_len == 1) {
        bt_level = 0;
    } else {
        int32_t max_i = 1;
        for (int32_t i = 2; i < learnt_len; i++)
            if (level[out_learnt[i] >> 1] > level[out_learnt[max_i] >> 1])
                max_i = i;
        int32_t tmp = out_learnt[1];
        out_learnt[1] = out_learnt[max_i];
        out_learnt[max_i] = tmp;
        bt_level = level[out_learnt[1] >> 1];
    }
    if (k->stamp == INT32_MAX) {
        memset(k->lvl_stamp, 0, (size_t)k->n_vars_cap * sizeof(int32_t));
        k->stamp = 0;
    }
    k->stamp++;
    int32_t lbd = 0;
    for (int32_t i = 0; i < learnt_len; i++) {
        int32_t lv = level[out_learnt[i] >> 1];
        if (k->lvl_stamp[lv] != k->stamp) {
            k->lvl_stamp[lv] = k->stamp;
            lbd++;
        }
    }
    for (int32_t i = 0; i < tc_len; i++)
        seen[k->to_clear[i]] = 0;
    out_ints[0] = learnt_len;
    out_ints[1] = bt_level;
    out_ints[2] = lbd;
    out_dbl[0] = var_inc;
    out_dbl[1] = cla_inc;
}
