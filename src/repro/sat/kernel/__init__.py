"""Optional compiled propagation kernel for :class:`repro.sat.Solver`.

The solver's two hot loops — unit propagation and first-UIP conflict
analysis — exist in two byte-for-byte-equivalent implementations: the pure
Python one in ``repro/sat/solver.py`` (always available) and a C mirror in
``kernel.c`` compiled via cffi (``python -m repro.sat.kernel.build``).

Backend selection (:func:`resolve_backend`):

- ``"python"`` — pure-Python loops over plain lists (the fastest layout for
  CPython; typed buffers would box every subscript).
- ``"native"`` — typed ``array`` buffers shared zero-copy with the compiled
  kernel (raw addresses bound once, rebound on growth).  Raises if the
  extension is unavailable, naming the fallback.
- ``"auto"`` (default) — ``native`` when importable, else ``python``.  The
  ``REPRO_KERNEL`` environment variable overrides ``auto`` (used by CI to
  force each backend through the full test suite).
"""

from __future__ import annotations

import os
from typing import Any, Optional, Tuple

BACKENDS: Tuple[str, ...] = ("auto", "python", "native")

_native_mod: Optional[Any] = None
_native_error: Optional[str] = None
_probed = False
_handles: Optional[Tuple[Any, Any]] = None


def load_native() -> Optional[Any]:
    """Import and cache the compiled extension; ``None`` if unavailable."""
    global _native_mod, _native_error, _probed
    if not _probed:
        _probed = True
        try:
            # The submodule is *generated* by `python -m repro.sat.kernel.
            # build`; a source checkout has no _native until built, so the
            # static view of this package legitimately lacks the attribute
            # and only this narrow code is suppressed.
            from . import _native  # type: ignore[attr-defined]

            _native_mod = _native
        except ImportError as exc:
            _native_error = str(exc)
    return _native_mod


def kernel_handles() -> Tuple[Any, Any]:
    """The compiled extension's ``(ffi, lib)`` pair, cached at module level.

    Every ``Solver(kernel="native")`` construction needs the pair; resolving
    it through the module attributes on each construction re-walks the cffi
    module wrapper, which shows up when parallel probes and pool workers
    build solvers by the hundred.  Raises :class:`RuntimeError` when the
    extension is not importable.
    """
    global _handles
    if _handles is None:
        mod = load_native()
        if mod is None:
            raise RuntimeError(
                f"compiled kernel unavailable ({native_error()}); build it "
                "with `python -m repro.sat.kernel.build`"
            )
        _handles = (mod.ffi, mod.lib)
    return _handles


def native_available() -> bool:
    return load_native() is not None


def native_error() -> Optional[str]:
    """The import error that made the native kernel unavailable, if any."""
    load_native()
    return _native_error


def resolve_backend(kernel: Optional[str] = None) -> str:
    """Resolve a kernel choice to a concrete backend (``python``/``native``).

    ``None`` and ``"auto"`` consult the ``REPRO_KERNEL`` environment
    variable, then pick ``native`` when the extension imports.  An explicit
    ``"python"``/``"native"`` always wins over the environment.
    """
    choice = kernel if kernel is not None else "auto"
    if choice == "auto":
        choice = os.environ.get("REPRO_KERNEL", "auto")
    if choice not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {choice!r}: expected one of {BACKENDS}"
        )
    if choice == "auto":
        return "native" if native_available() else "python"
    if choice == "native" and not native_available():
        raise RuntimeError(
            "kernel='native' requested but the compiled kernel is not "
            f"importable ({native_error()}); build it with "
            "`python -m repro.sat.kernel.build` or use kernel='auto' to "
            "fall back to the pure-Python kernel"
        )
    return choice
