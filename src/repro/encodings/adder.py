"""Adder-network ("arithmetic") encoding of cardinality constraints.

This is the stand-in for Z3's ``AtMost``/pseudo-Boolean theory path measured
in Table II of the paper: the inputs are totalised into a *binary* number by
a tree of ripple-carry adders, and the bound becomes an unsigned comparison
against a constant.  Like the pseudo-Boolean route, it treats the constraint
as arithmetic rather than as a counting circuit, and it behaves measurably
worse under unit propagation than Sinz's sequential counter (it is not
arc-consistent), reproducing the paper's AtMost-vs-CNF performance gap.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..sat.types import mk_lit, neg
from .tseitin import ripple_add


def binary_total(sink, lits: Sequence[int]) -> List[int]:
    """Sum the input bits into a little-endian binary number via an adder tree."""
    numbers: List[List[int]] = [[l] for l in lits]
    if not numbers:
        return []
    while len(numbers) > 1:
        merged: List[List[int]] = []
        for i in range(0, len(numbers) - 1, 2):
            merged.append(ripple_add(sink, numbers[i], numbers[i + 1]))
        if len(numbers) % 2:
            merged.append(numbers[-1])
        numbers = merged
    return numbers[0]


def compare_leq_const(sink, number: List[int], k: int, guard: Optional[int] = None):
    """Emit clauses forcing the little-endian ``number`` to be ``<= k``.

    If ``guard`` is given, the comparison is only enforced when ``guard`` is
    true (each clause gets ``-guard`` prepended), which supports
    assumption-driven incremental bounds.

    The encoding is the standard lexicographic one: for every bit position
    ``i`` where ``k`` has a 0, if that bit of ``number`` is 1 then some
    higher position where ``k`` has a 1 must be 0 in ``number``.
    """
    prefix = [neg(guard)] if guard is not None else []
    for i, bit in enumerate(number):
        if (k >> i) & 1:
            continue
        clause = list(prefix)
        clause.append(neg(bit))
        for j in range(i + 1, len(number)):
            if (k >> j) & 1:
                clause.append(neg(number[j]))
        sink.add_clause(clause)


def adder_at_most_k(sink, lits: Sequence[int], k: int) -> None:
    """Enforce ``sum(lits) <= k`` through a binary adder network."""
    lits = list(lits)
    if k >= len(lits):
        return
    if k < 0:
        raise ValueError("k must be non-negative")
    total = binary_total(sink, lits)
    compare_leq_const(sink, total, k)


class IncrementalAdder:
    """Adder-network totalisation with assumption-controlled bounds.

    The binary total is built once; each requested bound creates a fresh
    guard literal whose assumption activates the corresponding comparison.
    """

    def __init__(self, sink, lits: Sequence[int]):
        self.lits = list(lits)
        self._sink = sink
        self.total = binary_total(sink, self.lits)
        self._guards = {}

    def bound_literal(self, bound: int) -> Optional[int]:
        """Literal to assume so that ``sum(lits) <= bound`` holds."""
        if bound >= len(self.lits):
            return None
        if bound < 0:
            raise ValueError("bound must be non-negative")
        if bound not in self._guards:
            guard = mk_lit(self._sink.new_var())
            compare_leq_const(self._sink, self.total, bound, guard=guard)
            self._guards[bound] = guard
        return self._guards[bound]
