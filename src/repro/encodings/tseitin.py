"""Tseitin gate library: definitional CNF for small Boolean functions.

Every function takes a *sink* — any object exposing ``new_var()`` and
``add_clause(lits)`` (a :class:`repro.sat.Solver` or a
:class:`repro.sat.CNF`) — plus packed literals, emits the definitional
clauses, and returns the literal of the freshly defined output.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..sat.types import mk_lit, neg


def tseitin_and(sink, a: int, b: int) -> int:
    """Define ``y <-> a AND b`` and return literal ``y``."""
    y = mk_lit(sink.new_var())
    sink.add_clause([neg(y), a])
    sink.add_clause([neg(y), b])
    sink.add_clause([y, neg(a), neg(b)])
    return y


def tseitin_or(sink, a: int, b: int) -> int:
    """Define ``y <-> a OR b`` and return literal ``y``."""
    y = mk_lit(sink.new_var())
    sink.add_clause([y, neg(a)])
    sink.add_clause([y, neg(b)])
    sink.add_clause([neg(y), a, b])
    return y


def tseitin_xor(sink, a: int, b: int) -> int:
    """Define ``y <-> a XOR b`` and return literal ``y``."""
    y = mk_lit(sink.new_var())
    sink.add_clause([neg(y), a, b])
    sink.add_clause([neg(y), neg(a), neg(b)])
    sink.add_clause([y, neg(a), b])
    sink.add_clause([y, a, neg(b)])
    return y


def tseitin_and_many(sink, lits: Sequence[int]) -> int:
    """Define ``y <-> AND(lits)`` and return literal ``y``."""
    lits = list(lits)
    if not lits:
        raise ValueError("empty conjunction")
    if len(lits) == 1:
        return lits[0]
    y = mk_lit(sink.new_var())
    for a in lits:
        sink.add_clause([neg(y), a])
    sink.add_clause([y] + [neg(a) for a in lits])
    return y


def tseitin_or_many(sink, lits: Sequence[int]) -> int:
    """Define ``y <-> OR(lits)`` and return literal ``y``."""
    lits = list(lits)
    if not lits:
        raise ValueError("empty disjunction")
    if len(lits) == 1:
        return lits[0]
    y = mk_lit(sink.new_var())
    for a in lits:
        sink.add_clause([y, neg(a)])
    sink.add_clause([neg(y)] + list(lits))
    return y


def tseitin_equiv(sink, a: int, b: int) -> int:
    """Define ``y <-> (a <-> b)`` and return literal ``y``."""
    return neg(tseitin_xor(sink, a, b))


def add_implies(sink, antecedents: Sequence[int], consequent_clause: Sequence[int]):
    """Emit ``AND(antecedents) -> OR(consequent_clause)`` as one clause."""
    sink.add_clause([neg(a) for a in antecedents] + list(consequent_clause))


def half_adder(sink, a: int, b: int) -> Tuple[int, int]:
    """Return ``(sum, carry)`` literals for the half adder of ``a`` and ``b``."""
    s = tseitin_xor(sink, a, b)
    c = tseitin_and(sink, a, b)
    return s, c


def full_adder(sink, a: int, b: int, cin: int) -> Tuple[int, int]:
    """Return ``(sum, carry)`` literals for the full adder of three bits.

    The carry uses a direct 6-clause majority definition instead of chained
    AND/OR gates to keep the adder-network encoding tight.
    """
    s1 = tseitin_xor(sink, a, b)
    s = tseitin_xor(sink, s1, cin)
    c = mk_lit(sink.new_var())
    for x, y in ((a, b), (a, cin), (b, cin)):
        sink.add_clause([neg(x), neg(y), c])
        sink.add_clause([x, y, neg(c)])
    return s, c


def ripple_add(sink, num_a: List[int], num_b: List[int]) -> List[int]:
    """Add two little-endian binary numbers (lists of literals).

    Returns the little-endian sum, one bit longer than the wider input.
    """
    out: List[int] = []
    carry = None
    width = max(len(num_a), len(num_b))
    for i in range(width):
        bits = []
        if i < len(num_a):
            bits.append(num_a[i])
        if i < len(num_b):
            bits.append(num_b[i])
        if carry is not None:
            bits.append(carry)
        if not bits:
            break
        if len(bits) == 1:
            out.append(bits[0])
            carry = None
        elif len(bits) == 2:
            s, carry = half_adder(sink, bits[0], bits[1])
            out.append(s)
        else:
            s, carry = full_adder(sink, bits[0], bits[1], bits[2])
            out.append(s)
    if carry is not None:
        out.append(carry)
    return out
