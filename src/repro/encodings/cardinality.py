"""CNF encodings of Boolean cardinality constraints (at-most-k).

The paper's Improvement 3 (Sec. III-C) hinges on *how* the SWAP-count bound
``sum sigma <= S_B`` reaches the solver: routing it through Z3's ``AtMost``
pseudo-Boolean machinery nullified the bit-vector gains, while a sequential
counter circuit in CNF (Sinz 2005) kept everything inside the fast SAT core.

This module provides that sequential counter plus the standard alternatives
(pairwise, binomial, bitwise, commander, totalizer) and, in
:mod:`repro.encodings.adder`, the adder-network encoding that plays the role
of the pseudo-Boolean path in our substitution (see DESIGN.md).

Two usage styles are supported:

* one-shot enforcement — :func:`encode_at_most_k` emits clauses that make the
  bound hold in every model;
* incremental bounds — :class:`IncrementalCounter` and
  :class:`IncrementalTotalizer` build a unary output register once and let
  the optimizer tighten the bound per solve via an assumption literal, which
  is what the iterative-descent SWAP optimization needs.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Sequence

from ..sat.types import mk_lit, neg

PAIRWISE = "pairwise"
SEQUENTIAL = "seqcounter"
TOTALIZER = "totalizer"
BITWISE = "bitwise"
COMMANDER = "commander"
ADDER = "adder"

METHODS = (PAIRWISE, SEQUENTIAL, TOTALIZER, BITWISE, COMMANDER, ADDER)


def at_most_one_pairwise(sink, lits: Sequence[int]) -> None:
    """Pairwise (binomial) at-most-one: O(n^2) binary clauses, no aux vars."""
    for a, b in combinations(lits, 2):
        sink.add_clause([neg(a), neg(b)])


def at_most_one_bitwise(sink, lits: Sequence[int]) -> None:
    """Bitwise at-most-one: each input implies the binary code of its index."""
    n = len(lits)
    if n <= 1:
        return
    n_bits = max(1, (n - 1).bit_length())
    bits = [mk_lit(sink.new_var()) for _ in range(n_bits)]
    for idx, lit in enumerate(lits):
        for b in range(n_bits):
            code_bit = bits[b] if (idx >> b) & 1 else neg(bits[b])
            sink.add_clause([neg(lit), code_bit])


def at_most_one_commander(sink, lits: Sequence[int], group_size: int = 3) -> None:
    """Commander at-most-one: recursive grouping with commander variables."""
    lits = list(lits)
    if len(lits) <= group_size + 1:
        at_most_one_pairwise(sink, lits)
        return
    commanders: List[int] = []
    for start in range(0, len(lits), group_size):
        group = lits[start : start + group_size]
        if len(group) == 1:
            commanders.append(group[0])
            continue
        at_most_one_pairwise(sink, group)
        c = mk_lit(sink.new_var())
        for g in group:
            sink.add_clause([neg(g), c])  # any group member raises the commander
        commanders.append(c)
    at_most_one_commander(sink, commanders, group_size)


def at_most_k_pairwise(sink, lits: Sequence[int], k: int) -> None:
    """Binomial at-most-k: forbid every (k+1)-subset.  Exponential; small n only."""
    if k >= len(lits):
        return
    for subset in combinations(lits, k + 1):
        sink.add_clause([neg(l) for l in subset])


def sequential_counter(sink, lits: Sequence[int], k: int) -> None:
    """Sinz's sequential-counter at-most-k (LT_{n,k}) in CNF.

    Registers ``s[i][j]`` mean "at least j+1 of the first i+1 inputs are
    true"; overflow at width ``k`` is forbidden.  O(n*k) clauses and
    variables.  This is the encoding the paper selects for Eq. 5.
    """
    lits = list(lits)
    n = len(lits)
    if k >= n:
        return
    if k == 0:
        for lit in lits:
            sink.add_clause([neg(lit)])
        return
    registers = _counter_registers(sink, lits, width=k)
    # Overflow: input i true while the previous count already reached k.
    for i in range(1, n):
        if k - 1 < len(registers[i - 1]):
            sink.add_clause([neg(lits[i]), neg(registers[i - 1][k - 1])])


def _counter_registers(sink, lits: Sequence[int], width: int) -> List[List[int]]:
    """Build the one-directional unary counting registers of Sinz's encoding.

    ``registers[i][j]`` is forced true whenever at least ``j+1`` of
    ``lits[0..i]`` are true (the other direction is not constrained, which is
    sound for at-most-k bounds).
    """
    n = len(lits)
    registers: List[List[int]] = []
    for i in range(n):
        row = [mk_lit(sink.new_var()) for _ in range(min(width, i + 1))]
        registers.append(row)
        sink.add_clause([neg(lits[i]), row[0]])  # x_i -> s[i][0]
        if i == 0:
            continue
        prev = registers[i - 1]
        for j in range(len(row)):
            if j < len(prev):
                sink.add_clause([neg(prev[j]), row[j]])  # carry count forward
            if j >= 1 and j - 1 < len(prev):
                # x_i and count(i-1) >= j  ->  count(i) >= j+1
                sink.add_clause([neg(lits[i]), neg(prev[j - 1]), row[j]])
    return registers


class IncrementalCounter:
    """Sequential counter with assumption-controlled bounds.

    Builds registers up to ``max_bound + 1`` once; then
    :meth:`bound_literal` returns a literal whose *assumption* enforces
    ``sum(lits) <= bound`` for any ``bound <= max_bound``, enabling the
    paper's iterative-descent SWAP refinement without re-encoding.
    """

    def __init__(self, sink, lits: Sequence[int], max_bound: Optional[int] = None):
        self.lits = list(lits)
        n = len(self.lits)
        if max_bound is None:
            max_bound = n
        self.max_bound = min(max_bound, n)
        width = min(self.max_bound + 1, n)
        if n == 0 or width == 0:
            self.outputs: List[int] = []
            self.registers: List[List[int]] = []
        else:
            # The full register rows are kept (not just the outputs) so the
            # formula linter can verify the ladder's carry structure.
            self.registers = _counter_registers(sink, self.lits, width=width)
            self.outputs = self.registers[-1]
        # outputs[j] true  <=  count >= j+1 (one direction)

    def bound_literal(self, bound: int) -> Optional[int]:
        """Literal to assume so that ``sum(lits) <= bound`` holds.

        Returns ``None`` when the bound is trivially satisfied (``bound >=
        len(lits)``).  Raises :class:`ValueError` for bounds above the
        construction-time maximum that are not trivial.
        """
        if bound >= len(self.lits):
            return None
        if bound > self.max_bound:
            raise ValueError(
                f"bound {bound} exceeds construction-time max {self.max_bound}"
            )
        if bound < 0:
            raise ValueError("bound must be non-negative")
        return neg(self.outputs[bound])


class IncrementalTotalizer:
    """Totalizer (Bailleux & Boutaouche) with assumption-controlled bounds.

    A balanced merge tree produces a unary output register ``o`` where
    ``o[j]`` is forced true whenever at least ``j+1`` inputs are true.
    Assuming ``-o[b]`` enforces at-most-``b``.
    """

    def __init__(self, sink, lits: Sequence[int]):
        self.lits = list(lits)
        self.outputs = self._build(sink, self.lits)

    def _build(self, sink, lits: List[int]) -> List[int]:
        if len(lits) <= 1:
            return list(lits)
        mid = len(lits) // 2
        left = self._build(sink, lits[:mid])
        right = self._build(sink, lits[mid:])
        p, q = len(left), len(right)
        out = [mk_lit(sink.new_var()) for _ in range(p + q)]
        for i in range(p + 1):
            for j in range(q + 1):
                if i + j == 0:
                    continue
                clause = [out[i + j - 1]]
                if i > 0:
                    clause.append(neg(left[i - 1]))
                if j > 0:
                    clause.append(neg(right[j - 1]))
                sink.add_clause(clause)
        return out

    def bound_literal(self, bound: int) -> Optional[int]:
        """Literal to assume so that ``sum(lits) <= bound`` holds."""
        if bound >= len(self.lits):
            return None
        if bound < 0:
            raise ValueError("bound must be non-negative")
        return neg(self.outputs[bound])


def totalizer_at_most_k(sink, lits: Sequence[int], k: int) -> None:
    """One-shot totalizer at-most-k."""
    if k >= len(lits):
        return
    tot = IncrementalTotalizer(sink, lits)
    lit = tot.bound_literal(k)
    if lit is not None:
        sink.add_clause([lit])


def encode_at_most_k(sink, lits: Sequence[int], k: int, method: str = SEQUENTIAL):
    """Enforce ``sum(lits) <= k`` using the requested encoding."""
    lits = list(lits)
    if k < 0:
        raise ValueError("k must be non-negative")
    if k >= len(lits):
        return
    if method == PAIRWISE:
        at_most_k_pairwise(sink, lits, k)
    elif method == SEQUENTIAL:
        sequential_counter(sink, lits, k)
    elif method == TOTALIZER:
        totalizer_at_most_k(sink, lits, k)
    elif method == BITWISE:
        if k != 1:
            raise ValueError("bitwise encoding only supports at-most-one")
        at_most_one_bitwise(sink, lits)
    elif method == COMMANDER:
        if k != 1:
            raise ValueError("commander encoding only supports at-most-one")
        at_most_one_commander(sink, lits)
    elif method == ADDER:
        from .adder import adder_at_most_k

        adder_at_most_k(sink, lits, k)
    else:
        raise ValueError(f"unknown cardinality method {method!r}")


def encode_at_least_k(sink, lits: Sequence[int], k: int, method: str = SEQUENTIAL):
    """Enforce ``sum(lits) >= k`` by bounding the negated literals."""
    lits = list(lits)
    if k <= 0:
        return
    if k > len(lits):
        sink.add_clause([])  # unsatisfiable
        return
    if k == 1:
        sink.add_clause(list(lits))
        return
    encode_at_most_k(sink, [neg(l) for l in lits], len(lits) - k, method=method)


def encode_exactly_k(sink, lits: Sequence[int], k: int, method: str = SEQUENTIAL):
    """Enforce ``sum(lits) == k``."""
    encode_at_most_k(sink, lits, k, method=method)
    encode_at_least_k(sink, lits, k, method=method)
