"""Setup shim so that editable installs work without the ``wheel`` package.

All metadata lives in ``pyproject.toml``; this file exists because the
offline environment lacks ``wheel``, which PEP 660 editable installs require.
``pip install -e . --no-build-isolation`` falls back to this shim.
"""

from setuptools import setup

setup()
