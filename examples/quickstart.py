"""Quickstart: optimally map a Toffoli circuit onto IBM QX2.

This reproduces the paper's running example (Fig. 2-4): the 3-qubit Toffoli
circuit is placed and scheduled on the 5-qubit QX2 coupling graph with SWAP
duration 3, first depth-optimally, then SWAP-optimally.

Run:  python examples/quickstart.py
"""

from repro import OLSQ2, QuantumCircuit, SynthesisConfig, validate_result
from repro.arch import ibm_qx2
from repro.circuit import draw_schedule, mapping_metrics


def build_toffoli() -> QuantumCircuit:
    """The standard 15-gate Toffoli decomposition of the paper's Fig. 2."""
    qc = QuantumCircuit(3, name="toffoli")
    qc.h(2)
    qc.cx(1, 2)
    qc.tdg(2)
    qc.cx(0, 2)
    qc.t(2)
    qc.cx(1, 2)
    qc.tdg(2)
    qc.cx(0, 2)
    qc.t(1)
    qc.t(2)
    qc.h(2)
    qc.cx(0, 1)
    qc.t(0)
    qc.tdg(1)
    qc.cx(0, 1)
    return qc


def main() -> None:
    circuit = build_toffoli()
    device = ibm_qx2()
    print(f"circuit: {circuit}")
    print(f"device:  {device}")
    print(f"logical depth lower bound T_LB = {circuit.depth()}")
    print()

    config = SynthesisConfig(swap_duration=3, time_budget=120)
    synthesizer = OLSQ2(config)

    for objective in ("depth", "swap"):
        result = synthesizer.synthesize(circuit, device, objective=objective)
        validate_result(result)  # independent check of constraints (1)-(5)
        print(f"== objective: {objective} ==")
        print(result.summary())
        print(f"initial mapping: q -> {result.initial_mapping}")
        print(f"final mapping:   q -> {result.final_mapping}")
        print("schedule (time, op, physical qubits):")
        for t, name, phys, _idx in result.schedule_table():
            print(f"  t={t:>2}  {name:<5} {phys}")
        print()

    print("schedule over physical wires (x--x marks SWAP endpoints):")
    print(draw_schedule(result))
    print()
    metrics = mapping_metrics(result)
    print(
        f"overheads: depth x{metrics.depth_overhead:.2f}, "
        f"CNOT x{metrics.cnot_overhead:.2f}, "
        f"{metrics.physical_qubits_used}/{result.device.n_qubits} qubits used"
    )
    print()

    # The mapped circuit as OpenQASM, SWAPs decomposed into three CNOTs.
    physical = result.to_physical_circuit()
    print("physical circuit (first lines of QASM):")
    for line in physical.to_qasm().splitlines()[:8]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
