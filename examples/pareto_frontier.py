"""Depth/SWAP Pareto exploration (paper Sec. III-B.2).

Increasing the depth bound can reduce the number of SWAPs: the
SWAP-optimization mode starts from a depth-optimal solution and performs a
two-dimensional search, recording one (depth bound, optimal SWAPs) point
per round.  This example prints the frontier for a small QAOA instance.

Run:  python examples/pareto_frontier.py
"""

from repro import OLSQ2, SynthesisConfig, validate_result
from repro.arch import linear
from repro.workloads import qaoa_circuit


def main() -> None:
    circuit = qaoa_circuit(6, seed=3)
    device = linear(6)  # a line: maximally SWAP-hungry
    print(f"circuit: {circuit}")
    print(f"device:  {device}")
    print()

    config = SynthesisConfig(
        swap_duration=1,
        time_budget=150,
        solve_time_budget=60,
        max_pareto_rounds=3,
    )
    result = OLSQ2(config).synthesize(circuit, device, objective="swap")
    validate_result(result)

    print(result.summary())
    print()
    print("Pareto points (depth bound -> best SWAP count at that depth):")
    for depth_bound, swap_count in result.pareto_points:
        print(f"  depth <= {depth_bound:>2}  ->  {swap_count} swaps")
    print()
    print(f"chosen solution: depth {result.depth}, {result.swap_count} swaps")
    if len(result.pareto_points) > 1:
        first, last = result.pareto_points[0], result.pareto_points[-1]
        if last[1] < first[1]:
            print("relaxing the depth bound reduced the SWAP count, as in Sec. III-B.2.")
        else:
            print("no further SWAP reduction from relaxing depth: Pareto-terminal.")


if __name__ == "__main__":
    main()
