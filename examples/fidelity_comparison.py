"""Success-rate impact of layout quality (the paper's Sec. I motivation).

Maps one QAOA workload with SABRE, SATMap and TB-OLSQ2, then scores each
mapped circuit under a noise model (per-CNOT error, coherence decay).  The
fewer SWAPs and the shallower the schedule, the higher the estimated
success probability — the reason optimal layout synthesis matters at all.

Run:  python examples/fidelity_comparison.py
"""

from repro import SynthesisConfig, validate_result
from repro.arch import grid
from repro.baselines import SABRE, SATMap
from repro.core import TBOLSQ2, NoiseModel, compare_success_rates
from repro.workloads import qaoa_circuit


def main() -> None:
    circuit = qaoa_circuit(8, seed=1)
    device = grid(3, 3)
    model = NoiseModel(
        two_qubit_error=0.008,
        single_qubit_error=0.0005,
        gate_time=1.0,
        t1=400.0,
    )
    print(f"workload: {circuit}")
    print(f"device:   {device}")
    print(f"noise:    CNOT error {model.two_qubit_error}, T1 {model.t1}")
    print()

    config = SynthesisConfig(
        swap_duration=1, time_budget=90, solve_time_budget=45, max_pareto_rounds=1
    )
    results = {
        "SABRE": SABRE(swap_duration=1, seed=0).synthesize(circuit, device),
        "SATMap": SATMap(slice_size=6, config=config).synthesize(circuit, device),
        "TB-OLSQ2": TBOLSQ2(config).synthesize(circuit, device, objective="swap"),
    }
    for result in results.values():
        validate_result(result)

    rates = compare_success_rates(results, model)
    print(f"{'tool':<10} {'swaps':>5} {'depth':>5} {'est. success rate':>18}")
    for name, result in results.items():
        print(
            f"{name:<10} {result.swap_count:>5} {result.depth:>5} "
            f"{rates[name]:>17.1%}"
        )
    best = max(rates, key=rates.get)
    print()
    print(f"highest estimated success rate: {best}")


if __name__ == "__main__":
    main()
