"""The SAT substrate as a standalone toolkit.

The constraint engine underneath OLSQ2 is a complete incremental CDCL
solver with preprocessing and proof logging — usable on its own.  This
example solves a pigeonhole instance, certifies the UNSAT answer with a
checked RUP proof, and shows preprocessing plus DIMACS round-tripping.

Run:  python examples/sat_toolkit.py
"""

from repro.sat import (
    check_unsat_proof,
    CNF,
    mk_lit,
    preprocess,
    preprocess_stats,
    proof_stats,
    SatResult,
    Solver,
)
from repro.sat.dimacs import dumps


def pigeonhole(n_pigeons: int, n_holes: int) -> CNF:
    """Every pigeon in a hole, no two pigeons share one."""
    cnf = CNF()
    x = [[cnf.new_var() for _ in range(n_holes)] for _ in range(n_pigeons)]
    for p in range(n_pigeons):
        cnf.add_clause([mk_lit(x[p][h]) for h in range(n_holes)])
    for h in range(n_holes):
        for p1 in range(n_pigeons):
            for p2 in range(p1 + 1, n_pigeons):
                cnf.add_clause([mk_lit(x[p1][h], True), mk_lit(x[p2][h], True)])
    return cnf


def main() -> None:
    cnf = pigeonhole(6, 5)
    print(f"pigeonhole(6,5): {cnf.n_vars} vars, {cnf.num_clauses} clauses")
    print("first DIMACS lines:")
    for line in dumps(cnf).splitlines()[:3]:
        print(f"  {line}")
    print()

    # Solve with proof logging and certify the refutation.
    solver = Solver(proof_log=True)
    cnf.to_solver(solver)
    status = solver.solve()
    print(f"status: {status.value.upper()}")
    print(f"search: {solver.stats.conflicts} conflicts, "
          f"{solver.stats.restarts} restarts")
    stats = proof_stats(solver.proof)
    print(f"proof:  {stats['additions']} clause additions, "
          f"{stats['deletions']} deletions")
    verified = check_unsat_proof(cnf, solver.proof)
    print(f"RUP proof check: {'VERIFIED' if verified else 'FAILED'}")
    print()

    # Preprocessing on a satisfiable variant.
    sat_cnf = pigeonhole(5, 5)
    simplified, recon = preprocess(sat_cnf)
    stats = preprocess_stats(sat_cnf, simplified)
    print(
        f"pigeonhole(5,5) preprocessing: {stats['clauses_before']} -> "
        f"{stats['clauses_after']} clauses "
        f"({100 * stats['clause_reduction']:.0f}% removed)"
    )
    solver2 = Solver()
    simplified.to_solver(solver2)
    assert solver2.solve() is SatResult.SAT
    model = recon.extend(solver2.model)
    assert sat_cnf.evaluate(model[: sat_cnf.n_vars])
    print("simplified model extends to a model of the original: OK")


if __name__ == "__main__":
    main()
