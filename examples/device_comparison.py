"""Mapping one workload across device topologies (the Table III observation).

The same QAOA circuit is synthesized onto line, grid, Sycamore-region and
heavy-hex (Eagle-region) coupling graphs.  Heuristic quality degrades as
devices grow (the paper's SABRE observation); the exact tool's results
depend only on connectivity.

Run:  python examples/device_comparison.py
"""

from repro import SynthesisConfig, validate_result
from repro.arch import devices
from repro.baselines import SABRE
from repro.core import TBOLSQ2
from repro.workloads import qaoa_circuit


def main() -> None:
    circuit = qaoa_circuit(6, seed=1)
    targets = [
        devices.linear(8),
        devices.grid(3, 3),
        devices.sycamore_region(10),
        devices.eagle_region(12),
    ]
    config = SynthesisConfig(
        swap_duration=1, time_budget=90, solve_time_budget=45, max_pareto_rounds=1
    )
    print(f"workload: {circuit}")
    print()
    print(f"{'device':<14} {'qubits':>6} {'edges':>5} {'SABRE swaps':>11} {'TB-OLSQ2 swaps':>14}")
    for device in targets:
        sabre = SABRE(swap_duration=1, seed=0).synthesize(circuit, device)
        validate_result(sabre)
        exact = TBOLSQ2(config).synthesize(circuit, device, objective="swap")
        validate_result(exact)
        print(
            f"{device.name:<14} {device.n_qubits:>6} {device.num_edges:>5} "
            f"{sabre.swap_count:>11} {exact.swap_count:>14}"
        )
    print()
    print("sparser connectivity costs more SWAPs; the exact tool's advantage")
    print("over the heuristic grows with the device (the paper's Sec. IV-C trend).")


if __name__ == "__main__":
    main()
