"""Compile QAOA circuits: exact vs heuristic SWAP counts (the Table IV story).

QAOA phase-splitting circuits for random 3-regular graphs are the paper's
stress workload: every edge of the graph needs a two-qubit interaction, so
sparse device connectivity forces SWAPs.  This example compiles one QAOA
instance with SABRE (heuristic), SATMap (MaxSAT slicing), and TB-OLSQ2
(near-optimal transitions) and compares SWAP counts.

Run:  python examples/qaoa_compilation.py
"""

from repro import SynthesisConfig, validate_result
from repro.arch import grid
from repro.baselines import SABRE, SATMap
from repro.core import TBOLSQ2
from repro.workloads import qaoa_circuit


def main() -> None:
    circuit = qaoa_circuit(8, seed=1)
    device = grid(3, 3)
    print(f"QAOA workload: {circuit}")
    print(f"target device: {device}")
    print()

    config = SynthesisConfig(
        swap_duration=1,  # paper convention for QAOA (Sec. IV)
        time_budget=90,
        solve_time_budget=45,
        max_pareto_rounds=1,
    )

    sabre = SABRE(swap_duration=1, seed=0).synthesize(circuit, device)
    validate_result(sabre)
    print(f"SABRE     : {sabre.swap_count:>2} swaps, depth {sabre.depth}")

    satmap = SATMap(slice_size=6, config=config).synthesize(circuit, device)
    validate_result(satmap)
    print(f"SATMap    : {satmap.swap_count:>2} swaps, depth {satmap.depth}")

    tb = TBOLSQ2(config).synthesize(circuit, device, objective="swap")
    validate_result(tb)
    print(f"TB-OLSQ2  : {tb.swap_count:>2} swaps, depth {tb.depth}")
    print()
    print(
        "expected ordering (Table IV): "
        f"TB-OLSQ2 ({tb.swap_count}) <= SATMap ({satmap.swap_count}) "
        f"<= SABRE ({sabre.swap_count})"
    )


if __name__ == "__main__":
    main()
