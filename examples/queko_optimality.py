"""QUEKO benchmarks: checking a synthesizer against known optima.

QUEKO circuits (Tan & Cong, TC'20) are generated backwards from a device so
their optimal depth is known by construction and their optimal SWAP count
is zero.  The paper uses them to show OLSQ2 is depth-optimal in practice
(Table III) while heuristics drift far from the optimum as circuits grow.

Run:  python examples/queko_optimality.py
"""

from repro import OLSQ2, SynthesisConfig, validate_result
from repro.arch import grid
from repro.baselines import SABRE
from repro.workloads import queko_circuit


def main() -> None:
    device = grid(3, 3)
    config = SynthesisConfig(swap_duration=1, time_budget=120, solve_time_budget=60)
    print(f"device: {device}")
    print()
    print("depth   known-opt  OLSQ2(depth)  optimal?  SABRE(depth)  SABRE swaps")
    for depth in (3, 5, 7):
        inst = queko_circuit(device, depth=depth, n_gates=3 * depth, seed=depth)
        exact = OLSQ2(config).synthesize(inst.circuit, device, objective="depth")
        validate_result(exact)
        heuristic = SABRE(swap_duration=1, seed=0).synthesize(inst.circuit, device)
        validate_result(heuristic)
        assert exact.depth == inst.optimal_depth, "OLSQ2 must hit the optimum"
        print(
            f"{depth:>5}   {inst.optimal_depth:>9}  {exact.depth:>12}  "
            f"{str(exact.optimal):>8}  {heuristic.depth:>12}  {heuristic.swap_count:>11}"
        )
    print()
    print("OLSQ2 matches the hidden optimum on every row; SABRE pays extra")
    print("depth and SWAPs even though a zero-SWAP layout exists.")


if __name__ == "__main__":
    main()
