"""Portfolio parallel synthesis (the paper's Sec. V future direction).

Several OLSQ2 configurations — different injectivity encodings, cardinality
encodings, and heuristic warm-starting — race on separate cores; the first
proof of optimality (depth objective) or the best solution in budget (swap
objective) wins.

Run:  python examples/portfolio_synthesis.py
"""

from repro import SynthesisConfig, validate_result
from repro.arch import grid
from repro.core import PortfolioEntry, PortfolioSynthesizer
from repro.workloads import qaoa_circuit


def main() -> None:
    circuit = qaoa_circuit(8, seed=1)
    device = grid(3, 3)
    print(f"workload: {circuit}")
    print(f"device:   {device}")
    print()

    base = dict(swap_duration=1, time_budget=90, solve_time_budget=45)
    entries = [
        PortfolioEntry("bv-pairwise", SynthesisConfig(**base)),
        PortfolioEntry("bv-channeling", SynthesisConfig(injectivity="channeling", **base)),
        PortfolioEntry("bv-totalizer", SynthesisConfig(cardinality="totalizer", **base)),
        PortfolioEntry("bv-warmstart", SynthesisConfig(warm_start="sabre", **base)),
    ]
    print("portfolio entries:", ", ".join(e.name for e in entries))

    portfolio = PortfolioSynthesizer(entries, time_budget=120)
    result = portfolio.synthesize(circuit, device, objective="depth")
    validate_result(result)

    print()
    print(result.summary())
    print(f"winner: {result.solver_stats['portfolio_winner']}")
    print(f"worker outcomes so far: {portfolio.outcomes}")


if __name__ == "__main__":
    main()
